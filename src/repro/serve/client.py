"""A small blocking client for the :mod:`repro.serve` protocol.

One socket, one request at a time, newline-delimited JSON both ways —
deliberately simple, so it works from any thread (the load generator
gives each worker its own :class:`Client`) and from other languages by
transliteration.

    with Client(host, port) as client:
        client.execute("INSERT KEY 7 VALUE 3.5 AT 2")
        total = client.execute("SELECT SUM(value) WHERE key IN [1, 100)")

Failures come back as :class:`ServerReplyError` carrying the structured
``code`` + ``message`` the server sent (codes from :mod:`repro.errors`),
so callers can branch on ``exc.code == "SERVER_BUSY"`` for backoff.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.serve import protocol


class ServerReplyError(ReproError):
    """The server answered a request with a structured error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class Client:
    """Blocking connection to a TQL server.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and for each reply.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7654,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        #: The server's hello: protocol version, shard count, snapshot.
        self.hello: Dict[str, Any] = self._read_line()
        #: The session's pinned snapshot time (updated by :meth:`repin`).
        self.snapshot: int = int(self.hello.get("snapshot", 0))
        #: Trace ID of the last :meth:`execute` response, when sampled.
        self.last_trace_id: Optional[str] = None

    # -- low-level ---------------------------------------------------------------------

    def _read_line(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw protocol message; returns the raw response dict.

        Raises :class:`ServerReplyError` on an ``"ok": false`` response.
        """
        self._next_id += 1
        message = dict(message)
        message.setdefault("id", self._next_id)
        self._sock.sendall(protocol.encode(message))
        response = self._read_line()
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServerReplyError(error.get("code", "INTERNAL"),
                                   error.get("message", "unknown error"))
        return response

    # -- protocol ops ------------------------------------------------------------------

    def execute(self, tql: str, as_of: Optional[int] = None,
                trace: bool = False) -> Any:
        """Run one TQL statement; returns the decoded ``result``.

        ``trace=True`` forces the server to sample this request (the
        per-request override of ``--trace-sample-rate``); the assigned
        trace ID lands in :attr:`last_trace_id`.
        """
        message: Dict[str, Any] = {"op": "query", "tql": tql}
        if as_of is not None:
            message["as_of"] = as_of
        if trace:
            message["trace"] = True
        response = self.request(message)
        self.last_trace_id = response.get("trace_id")
        return response["result"]

    def ping(self) -> bool:
        """Liveness probe."""
        return self.request({"op": "ping"})["result"] == "pong"

    def repin(self) -> int:
        """Advance the session snapshot to the server's current ``now``."""
        self.snapshot = int(self.request({"op": "snapshot"})["result"])
        return self.snapshot

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics registry as JSON."""
        return self.request({"op": "metrics"})["result"]

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format (same body
        the ``--metrics-port`` HTTP endpoint serves)."""
        return self.request({"op": "metrics_text"})["result"]

    def slowlog(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Recent slow-request entries (newest first) plus the running
        total; ``limit`` caps the entries returned."""
        message: Dict[str, Any] = {"op": "slowlog"}
        if limit is not None:
            message["limit"] = limit
        return self.request(message)["result"]

    def sleep(self, seconds: float) -> str:
        """Occupy one execution slot for ``seconds`` (diagnostics)."""
        return self.request({"op": "sleep", "seconds": seconds})["result"]

    def load(self, events: Any, batch_size: int = 1024,
             mode: Optional[str] = None) -> Dict[str, Any]:
        """Bulk-ingest a chronologically sorted event batch.

        ``events`` is a sequence of ``(op, key, value, time)`` rows (or
        objects with those attributes); returns the merged ingest report
        dict.  Under the process executor the per-shard partitions load
        concurrently.  ``mode`` overrides the server's configured ingest
        path per request (``"direct"`` or ``"buffered"``); ``None`` keeps
        the server default (``--ingest``).
        """
        rows = [
            [e.op, e.key, getattr(e, "value", 0.0), e.time]
            if hasattr(e, "op") else list(e)
            for e in events
        ]
        message: Dict[str, Any] = {"op": "load", "events": rows,
                                   "batch_size": batch_size}
        if mode is not None:
            message["mode"] = mode
        return self.request(message)["result"]

    def respawn(self, shard: int) -> Dict[str, Any]:
        """Replace a dead shard worker (process executor only)."""
        return self.request({"op": "respawn", "shard": shard})["result"]

    def shutdown(self) -> str:
        """Ask the server to drain, checkpoint, and stop."""
        return self.request({"op": "shutdown"})["result"]

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
