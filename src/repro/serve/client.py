"""A small blocking client for the :mod:`repro.serve` protocol.

One socket, one request at a time, newline-delimited JSON both ways —
deliberately simple, so it works from any thread (the load generator
gives each worker its own :class:`Client`) and from other languages by
transliteration.

    with Client(host, port) as client:
        client.execute("INSERT KEY 7 VALUE 3.5 AT 2")
        total = client.execute("SELECT SUM(value) WHERE key IN [1, 100)")

Failures come back as :class:`ServerReplyError` carrying the structured
``code`` + ``message`` the server sent (codes from :mod:`repro.errors`),
so callers can branch on ``exc.code == "SERVER_BUSY"`` for backoff.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.serve import protocol

#: Error codes the client may retry transparently: the statement did not
#: apply (a dead worker rejects before logging; a redirect never reaches
#: one), so a single re-send against the healed/refreshed topology is
#: safe for reads and writes alike.
RETRIABLE_CODES = frozenset({"SHARD_DOWN", "SHARD_REDIRECT"})


class ServerReplyError(ReproError):
    """The server answered a request with a structured error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class Client:
    """Blocking connection to a TQL server.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and for each reply.
    retries:
        Transparent re-sends of a request answered ``SHARD_DOWN`` or
        ``SHARD_REDIRECT`` (both mean "the statement never applied;
        the route has moved or is healing").  The default single retry
        makes cluster failover and splits invisible to callers; set 0
        to surface every routing error.  Attempts are counted in
        :attr:`retries_sent` / :attr:`retries_recovered` so harnesses
        (the load generator's envelope) can report them.
    retry_backoff:
        Sleep before each retry, doubling per attempt (gives a healing
        primary its respawn window).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7654,
                 timeout: float = 30.0, retries: int = 1,
                 retry_backoff: float = 0.05) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: Retry attempts sent (lifetime of this client).
        self.retries_sent = 0
        #: Retry attempts that turned a routing error into a success.
        self.retries_recovered = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        #: The server's hello: protocol version, shard count, snapshot.
        self.hello: Dict[str, Any] = self._read_line()
        #: The session's pinned snapshot time (updated by :meth:`repin`).
        self.snapshot: int = int(self.hello.get("snapshot", 0))
        #: Trace ID of the last :meth:`execute` response, when sampled.
        self.last_trace_id: Optional[str] = None

    # -- low-level ---------------------------------------------------------------------

    def _read_line(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw protocol message; returns the raw response dict.

        Retriable routing errors (see :data:`RETRIABLE_CODES`) are
        re-sent up to ``retries`` times before raising; every failure
        raises :class:`ServerReplyError`.
        """
        for attempt in range(self.retries + 1):
            if attempt > 0:
                self.retries_sent += 1
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            response = self._send_once(message)
            if response.get("ok", False):
                if attempt > 0:
                    self.retries_recovered += 1
                return response
            error = response.get("error") or {}
            code = error.get("code", "INTERNAL")
            if code not in RETRIABLE_CODES or attempt >= self.retries:
                raise ServerReplyError(code, error.get("message",
                                                       "unknown error"))
        raise AssertionError("unreachable")  # loop always returns/raises

    def _send_once(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        message = dict(message)
        message.setdefault("id", self._next_id)
        self._sock.sendall(protocol.encode(message))
        return self._read_line()

    # -- protocol ops ------------------------------------------------------------------

    def execute(self, tql: str, as_of: Optional[int] = None,
                trace: bool = False) -> Any:
        """Run one TQL statement; returns the decoded ``result``.

        ``trace=True`` forces the server to sample this request (the
        per-request override of ``--trace-sample-rate``); the assigned
        trace ID lands in :attr:`last_trace_id`.
        """
        message: Dict[str, Any] = {"op": "query", "tql": tql}
        if as_of is not None:
            message["as_of"] = as_of
        if trace:
            message["trace"] = True
        response = self.request(message)
        self.last_trace_id = response.get("trace_id")
        return response["result"]

    def ping(self) -> bool:
        """Liveness probe."""
        return self.request({"op": "ping"})["result"] == "pong"

    def repin(self) -> int:
        """Advance the session snapshot to the server's current ``now``."""
        self.snapshot = int(self.request({"op": "snapshot"})["result"])
        return self.snapshot

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics registry as JSON."""
        return self.request({"op": "metrics"})["result"]

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format (same body
        the ``--metrics-port`` HTTP endpoint serves)."""
        return self.request({"op": "metrics_text"})["result"]

    def slowlog(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Recent slow-request entries (newest first) plus the running
        total; ``limit`` caps the entries returned."""
        message: Dict[str, Any] = {"op": "slowlog"}
        if limit is not None:
            message["limit"] = limit
        return self.request(message)["result"]

    def sleep(self, seconds: float) -> str:
        """Occupy one execution slot for ``seconds`` (diagnostics)."""
        return self.request({"op": "sleep", "seconds": seconds})["result"]

    def load(self, events: Any, batch_size: int = 1024,
             mode: Optional[str] = None) -> Dict[str, Any]:
        """Bulk-ingest a chronologically sorted event batch.

        ``events`` is a sequence of ``(op, key, value, time)`` rows (or
        objects with those attributes); returns the merged ingest report
        dict.  Under the process executor the per-shard partitions load
        concurrently.  ``mode`` overrides the server's configured ingest
        path per request (``"direct"`` or ``"buffered"``); ``None`` keeps
        the server default (``--ingest``).
        """
        rows = [
            [e.op, e.key, getattr(e, "value", 0.0), e.time]
            if hasattr(e, "op") else list(e)
            for e in events
        ]
        message: Dict[str, Any] = {"op": "load", "events": rows,
                                   "batch_size": batch_size}
        if mode is not None:
            message["mode"] = mode
        return self.request(message)["result"]

    def respawn(self, shard: int) -> Dict[str, Any]:
        """Replace a dead shard worker (process executor only)."""
        return self.request({"op": "respawn", "shard": shard})["result"]

    def topology(self) -> Dict[str, Any]:
        """The cluster routing table: group spans, worker pids/liveness,
        and split/merge/failover counters (cluster backend only)."""
        return self.request({"op": "topology"})["result"]

    def split(self, gid: int, at: Optional[int] = None) -> Dict[str, Any]:
        """Split shard group ``gid`` at key ``at`` (default midpoint)."""
        message: Dict[str, Any] = {"op": "split", "gid": gid}
        if at is not None:
            message["at"] = at
        return self.request(message)["result"]

    def merge(self, gid_a: int, gid_b: int) -> Dict[str, Any]:
        """Merge two adjacent shard groups into one."""
        return self.request({"op": "merge",
                             "gids": [gid_a, gid_b]})["result"]

    def promote(self, gid: int,
                replica: Optional[int] = None) -> Dict[str, Any]:
        """Hand group ``gid``'s write role to one of its replicas."""
        message: Dict[str, Any] = {"op": "promote", "gid": gid}
        if replica is not None:
            message["replica"] = replica
        return self.request(message)["result"]

    def shutdown(self) -> str:
        """Ask the server to drain, checkpoint, and stop."""
        return self.request({"op": "shutdown"})["result"]

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
