"""Elastic cluster plane: dynamic topology over process-per-shard workers.

:class:`ClusterWarehouse` extends the process backend
(:mod:`repro.serve.procpool`) with the three capabilities a static shard
map lacks:

* **online split/merge** — a hot key range is split by checkpointing the
  owning primary, cloning that checkpoint into a new shard directory
  (a file copy — no tree rebuild), spawning a fresh worker over the
  clone, shipping the WAL tail for the upper half of the range, and
  atomically swapping the routing table under the cluster's
  writer-preferring :class:`~repro.serve.rwlock.ReadWriteLock`.  Merge is
  the symmetric cold path: rebuild the two groups' logical update history
  from their temporal tuples, bulk-load it into a fresh worker, swap.
* **read replicas via WAL shipping** — each shard group runs N
  :mod:`~repro.serve.replica` workers that tail the primary's durable log
  and serve version-pinned reads; the router fences every replica read
  with the group's acked-write watermark, preserving read-your-writes.
* **failover** — a dead primary (pipe EOF, kill -9) redirects reads to a
  caught-up replica while a background respawn replays the WAL; if the
  respawn fails, a replica is *promoted* to writer.  Mid-loadgen SIGKILL
  of a primary is therefore invisible to clients.

Stable group ids, not positional indexes
----------------------------------------
The procpool identifies shards by position in a frozen boundary list.
A dynamic topology cannot: splits insert ranges and merges remove them.
Shard groups therefore carry a **gid** — a monotonically increasing id
allocated at creation and never reused.  Routing resolves a key to a gid
against an immutable :class:`Topology` snapshot (swapped atomically under
the topology lock), and queries in flight across a swap still resolve
their gid to a live worker: a split leaves the parent group serving the
lower half with its full pre-split data (range-clipped queries mask the
rest), so stale-topology reads remain *exact* — the same
partial-persistence argument that makes scatter-gather snapshot reads
sound in :mod:`repro.serve.sharded`.

Locking discipline (deadlock-free by construction)
--------------------------------------------------
Every write path (``insert``/``delete``/``update``/``load_events``) holds
the topology lock **shared** for its whole duration — routing decision
through worker acknowledgement — plus a per-group mutex ordered *after*
the topology lock.  A topology swap (split/merge) takes the topology lock
**exclusive**, which alone drains and excludes all writers; it never
acquires group mutexes, so the lock order is acyclic.  The shared hold is
also the buffered-ingest drain barrier: a split cannot interleave a
``LOAD`` window, it waits for the whole batch to land.  Reads take no
locks at all — they read one volatile topology reference.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.aggregates import Aggregate, SUM
from repro.core.cache import CacheConfig, CacheSnapshot
from repro.core.ingest import DEFAULT_BATCH_SIZE, IngestReport
from repro.core.model import Interval, KeyRange, MAX_KEY, NOW
from repro.errors import (
    QueryError,
    ReplicaLagError,
    ShardDownError,
    ShardRedirectError,
    ShardRoutingError,
    StorageError,
)
from repro.serve.procpool import (
    ShardClient,
    ShardSpec,
    _AggRef,
    _EXPLAIN_TRACE,
    _REGISTRY,
    _STATS,
    rate_since,
)
from repro.serve.replica import (
    _PROMOTE,
    _REPLICA_READ,
    _SYNC,
    REPLICA_READS,
    ReplicaSpec,
)
from repro.serve.rwlock import ReadWriteLock
from repro.serve.sharded import ShardRouter, _ShardedAggregates
from repro.serve.telemetry import current_context
from repro.storage.wal import WALCursor

#: Topology persistence file under the cluster's durable root.
TOPOLOGY_FILE = "cluster.json"

#: Read methods served only by primaries (cache/maintenance surfaces that
#: describe the writer's state, not the logical data).
_PRIMARY_ONLY_READS = frozenset({
    "cache_snapshot", "page_count", "check_invariants", "wal_seq",
})


class ShardGroup:
    """One key range's worker set: a primary plus its WAL-shipped
    replicas, with the group-local write bookkeeping."""

    __slots__ = ("gid", "lo", "hi", "wh_key_space", "dirname", "primary",
                 "replicas", "acked_seq", "write_lock", "heal_lock",
                 "qps", "rr")

    def __init__(self, gid: int, lo: int, hi: int,
                 wh_key_space: Tuple[int, int], dirname: str,
                 primary: ShardClient) -> None:
        self.gid = gid
        self.lo = lo
        self.hi = hi
        #: The warehouse-level key space the workers were built with; a
        #: split narrows routing (``lo``/``hi``) but never the warehouse
        #: domain, so clones stay loadable.
        self.wh_key_space = wh_key_space
        self.dirname = dirname
        self.primary = primary
        self.replicas: List[ShardClient] = []
        #: WAL sequence covering every acknowledged write to this group —
        #: the read-your-writes fence shipped with each replica read.
        self.acked_seq = 0
        #: Serializes writers within the group (writers hold the topology
        #: lock shared, so two writers to one group race without this).
        self.write_lock = threading.Lock()
        #: Serializes failover healing (respawn/promote) of the primary.
        self.heal_lock = threading.Lock()
        #: Request rate observed by the last stats scrape (planner input).
        self.qps = 0.0
        #: Round-robin cursor over read targets.
        self.rr = 0


class Topology:
    """An immutable routing snapshot: swapped as one reference, so
    lock-free readers see either the old map or the new one, never a
    half-updated mix."""

    __slots__ = ("version", "entries", "boundaries")

    def __init__(self, version: int,
                 entries: List[Tuple[int, int, int]]) -> None:
        self.version = version
        #: ``(gid, lo, hi)`` per group, ascending by ``lo``, contiguous.
        self.entries = entries
        self.boundaries = [lo for _, lo, _ in entries]
        self.boundaries.append(entries[-1][2])


class ClusterWarehouse(ShardRouter):
    """The elastic process-per-shard backend.

    Requires a ``durable_dir``: replication *is* the per-shard WAL (the
    shipping channel) and splits clone checkpoints, so a memory-only
    cluster has nothing to ship or clone.  The public query/update API is
    the :class:`~repro.serve.sharded.ShardRouter` surface — answers are
    byte-identical to the other backends — plus the cluster verbs
    (:meth:`split`, :meth:`merge`, :meth:`promote`, :meth:`topology_info`)
    and the :class:`ClusterPlanner` autosplit thread.

    Parameters beyond the procpool's: ``replicas`` (per group),
    ``autosplit`` (start the planner), ``split_qps`` /
    ``split_min_share`` / ``split_cooldown`` / ``max_groups`` (planner
    policy), ``planner_interval`` (tick period; the planner also respawns
    dead replicas), ``merge_qps`` (optional automerge threshold for
    adjacent cold groups; ``None`` keeps merge manual).
    """

    def __init__(self, shards: int = 4,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 page_capacity: int = 32, buffer_pages: int = 64,
                 strong_factor: float = 0.9, start_time: int = 1,
                 buffer_policy: str = "lru",
                 durable_dir: Optional[str] = None,
                 fsync: bool = False,
                 cache_config: Optional[CacheConfig] = None,
                 scan_batch: int = 8,
                 replicas: int = 1,
                 autosplit: bool = False,
                 split_qps: float = 64.0,
                 split_min_share: float = 0.45,
                 split_cooldown: float = 3.0,
                 max_groups: int = 16,
                 merge_qps: Optional[float] = None,
                 planner_interval: float = 0.5,
                 sync_timeout: float = 10.0,
                 start_timeout: float = 60.0) -> None:
        if durable_dir is None:
            raise ValueError(
                "ClusterWarehouse requires durable_dir: WAL shipping and "
                "checkpoint cloning need an on-disk log")
        import multiprocessing

        self._ctx = multiprocessing.get_context("spawn")
        self._root = durable_dir
        self._shape = dict(
            page_capacity=page_capacity, buffer_pages=buffer_pages,
            strong_factor=strong_factor, start_time=start_time,
            buffer_policy=buffer_policy, fsync=fsync,
            cache_config=cache_config, scan_batch=scan_batch)
        self.replica_count = replicas
        self._sync_timeout = sync_timeout
        self._start_timeout = start_timeout
        self.aggregates = _ShardedAggregates(self)
        #: Writers shared / topology swaps exclusive (see module docs).
        self._topology_lock = ReadWriteLock()
        #: Serializes split/merge/checkpoint admin (checkpoint truncates
        #: the WAL a concurrent split would still be shipping from).
        self._admin_lock = threading.Lock()
        self._groups_by_gid: Dict[int, ShardGroup] = {}
        self._rate_state: Dict[Any, Tuple[float, int]] = {}
        self.splits = 0
        self.merges = 0
        self.failovers = 0
        self.promotions = 0
        self._last_split = 0.0
        self._closed = False
        self._planner: Optional[ClusterPlanner] = None

        layout = self._read_topology_file()
        if layout is None:
            boundaries = self._split(key_space, shards)
            self.key_space = key_space
            self._next_gid = shards
            plan = [(gid, lo, hi, (lo, hi), _group_dir_name(gid))
                    for gid, (lo, hi) in enumerate(
                        zip(boundaries, boundaries[1:]))]
            version = 1
        else:
            self.key_space = tuple(layout["key_space"])
            self._next_gid = layout["next_gid"]
            plan = [(g["gid"], g["span"][0], g["span"][1],
                     tuple(g["key_space"]), g["dir"])
                    for g in layout["groups"]]
            version = layout["version"]

        # Spawn every primary first, then collect hellos (spawn imports
        # overlap across cores), then the replicas the same way.
        groups: List[ShardGroup] = []
        try:
            for gid, lo, hi, wh_ks, dirname in plan:
                client = self._spawn_primary(gid, wh_ks, dirname)
                groups.append(ShardGroup(gid, lo, hi, wh_ks, dirname,
                                         client))
            for group in groups:
                group.primary.wait_ready(start_timeout)
                self._groups_by_gid[group.gid] = group
            self._install_topology(groups, version=version)
            self._persist_topology()
            for group in groups:
                group.acked_seq = group.primary.call("wal_seq")
                self._spawn_replicas(group)
        except Exception:
            for group in groups:
                for client in [group.primary] + group.replicas:
                    client.request_shutdown()
                    client.reap(5.0)
            raise
        if autosplit or replicas > 0 or merge_qps is not None:
            self._planner = ClusterPlanner(
                self, interval=planner_interval, autosplit=autosplit,
                split_qps=split_qps, split_min_share=split_min_share,
                split_cooldown=split_cooldown, max_groups=max_groups,
                merge_qps=merge_qps)
            self._planner.start()

    # -- topology bookkeeping ----------------------------------------------------------

    def _read_topology_file(self) -> Optional[Dict[str, Any]]:
        path = os.path.join(self._root, TOPOLOGY_FILE)
        if not os.path.exists(path):
            return None
        with open(path) as fh:
            return json.load(fh)

    def _install_topology(self, groups: Sequence[ShardGroup],
                          version: int) -> None:
        ordered = sorted(groups, key=lambda g: g.lo)
        self._topology = Topology(
            version, [(g.gid, g.lo, g.hi) for g in ordered])

    def _persist_topology(self) -> None:
        topo = self._topology
        payload = {
            "version": topo.version,
            "key_space": list(self.key_space),
            "next_gid": self._next_gid,
            "groups": [
                {"gid": gid, "span": [lo, hi],
                 "key_space": list(self._groups_by_gid[gid].wh_key_space),
                 "dir": self._groups_by_gid[gid].dirname}
                for gid, lo, hi in topo.entries
            ],
        }
        path = os.path.join(self._root, TOPOLOGY_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)

    @property
    def boundaries(self) -> List[int]:
        """Current partition boundaries (a snapshot; splits change it)."""
        return self._topology.boundaries

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped by every split/merge swap."""
        return self._topology.version

    def shard_index(self, key: int) -> int:
        """The **gid** owning ``key`` under the current topology."""
        lo, hi = self.key_space
        if not lo <= key < hi:
            raise ShardRoutingError(
                f"key {key} outside key space [{lo}, {hi})")
        topo = self._topology
        return topo.entries[bisect_right(topo.boundaries, key) - 1][0]

    def parts_for(self, key_range: KeyRange) -> List[Tuple[int, KeyRange]]:
        """``(gid, clipped key range)`` pairs under the current topology."""
        topo = self._topology
        parts: List[Tuple[int, KeyRange]] = []
        for gid, lo, hi in topo.entries:
            clipped = key_range.intersection(KeyRange(lo, hi))
            if clipped is not None:
                parts.append((gid, clipped))
        return parts

    def _group(self, gid: int) -> ShardGroup:
        group = self._groups_by_gid.get(gid)
        if group is None:
            raise ShardRedirectError(
                f"shard group {gid} was retired by a topology change; "
                "re-route against the current topology and retry")
        return group

    # -- worker spawning ---------------------------------------------------------------

    def _primary_spec(self, gid: int, wh_key_space: Tuple[int, int],
                      dirname: str) -> ShardSpec:
        shape = self._shape
        return ShardSpec(
            index=gid, key_space=tuple(wh_key_space),
            page_capacity=shape["page_capacity"],
            buffer_pages=shape["buffer_pages"],
            strong_factor=shape["strong_factor"],
            start_time=shape["start_time"],
            buffer_policy=shape["buffer_policy"],
            durable_dir=os.path.join(self._root, dirname),
            fsync=shape["fsync"], cache_config=shape["cache_config"],
            scan_batch=shape["scan_batch"])

    def _spawn_primary(self, gid: int, wh_key_space: Tuple[int, int],
                       dirname: str) -> ShardClient:
        return ShardClient(self._primary_spec(gid, wh_key_space, dirname),
                           self._ctx, name=f"repro-group-{gid:02d}")

    def _replica_spec(self, group: ShardGroup,
                      replica_id: int) -> ReplicaSpec:
        from repro.serve.replica import ReplicaSpec

        shape = self._shape
        return ReplicaSpec(
            gid=group.gid, replica_id=replica_id,
            primary_dir=os.path.join(self._root, group.dirname),
            key_space=tuple(group.wh_key_space),
            page_capacity=shape["page_capacity"],
            buffer_pages=shape["buffer_pages"],
            strong_factor=shape["strong_factor"],
            start_time=shape["start_time"],
            buffer_policy=shape["buffer_policy"],
            fsync=shape["fsync"], sync_timeout=self._sync_timeout)

    def _spawn_replicas(self, group: ShardGroup) -> None:
        from repro.serve.replica import _replica_main

        fresh: List[ShardClient] = []
        for replica_id in range(self.replica_count - len(group.replicas)):
            spec = self._replica_spec(group, len(group.replicas)
                                      + replica_id)
            fresh.append(ShardClient(
                spec, self._ctx, main=_replica_main,
                name=f"repro-group-{group.gid:02d}-r{spec.replica_id}"))
        for client in fresh:
            client.wait_ready(self._start_timeout)
            group.replicas.append(client)

    def ensure_replicas(self) -> int:
        """Reap dead replicas and respawn up to the configured count
        (the planner calls this every tick; tests call it directly).
        Returns the number of workers spawned."""
        spawned = 0
        for group in list(self._groups_by_gid.values()):
            dead = [c for c in group.replicas if c.dead]
            for client in dead:
                client.reap(1.0)
                group.replicas.remove(client)
            before = len(group.replicas)
            self._spawn_replicas(group)
            spawned += len(group.replicas) - before
        return spawned

    # -- failover ----------------------------------------------------------------------

    def _ensure_primary(self, group: ShardGroup) -> None:
        """Make the group's primary usable again: respawn it (checkpoint +
        WAL replay restores every acked write), or — if the respawn
        fails — promote a caught-up replica to writer.  Serialized per
        group; concurrent detectors block here and find it healed."""
        with group.heal_lock:
            if not group.primary.dead:
                return
            self.failovers += 1
            old = group.primary
            try:
                client = self._spawn_primary(group.gid, group.wh_key_space,
                                             group.dirname)
                client.wait_ready(self._start_timeout)
                group.primary = client
            except Exception:
                self._promote_in_group(group)
            old.reap(1.0)
            # Re-derive the acked watermark from the healed primary: its
            # log is the authority on what was durably acknowledged.
            group.acked_seq = max(group.acked_seq,
                                  group.primary.call("wal_seq"))

    def _promote_in_group(self, group: ShardGroup) -> None:
        """Promote the first caught-up replica to writer (heal-path; the
        caller holds ``group.heal_lock``)."""
        last_exc: Optional[BaseException] = None
        for client in list(group.replicas):
            if client.dead:
                continue
            try:
                client.call(_PROMOTE, timeout=self._sync_timeout + 30.0)
            except Exception as exc:  # noqa: BLE001 — try the next one
                last_exc = exc
                continue
            group.replicas.remove(client)
            group.primary = client
            self.promotions += 1
            return
        raise ShardDownError(
            f"group {group.gid}: primary is down, respawn failed, and no "
            f"replica could be promoted ({last_exc})")

    def _note_primary_down(self, group: ShardGroup) -> None:
        """Kick a background heal so reads keep flowing to replicas while
        the primary restarts (single-flight via the heal lock)."""
        thread = threading.Thread(
            target=self._heal_quietly, args=(group,), daemon=True,
            name=f"repro-heal-{group.gid:02d}")
        thread.start()

    def _heal_quietly(self, group: ShardGroup) -> None:
        try:
            self._ensure_primary(group)
        except Exception:  # noqa: BLE001 — next caller retries/raises
            pass

    def promote(self, gid: int, replica: Optional[int] = None
                ) -> Dict[str, Any]:
        """Operator-initiated promotion: retire the current primary (if
        alive) and hand the group to one of its replicas."""
        group = self._group(gid)
        with self._admin_lock, group.heal_lock:
            if not group.replicas:
                raise QueryError(f"group {gid} has no replicas to promote")
            candidates = [c for c in group.replicas if not c.dead]
            if replica is not None:
                candidates = [c for c in candidates
                              if c.spec.replica_id == replica]
            if not candidates:
                raise ShardDownError(
                    f"group {gid}: no live replica to promote")
            old = group.primary
            if not old.dead:
                # Drain in-flight writes, close the WAL, then hand over.
                old.request_shutdown()
                old.reap(10.0)
            chosen = candidates[0]
            payload = chosen.call(_PROMOTE,
                                  timeout=self._sync_timeout + 30.0)
            group.replicas.remove(chosen)
            group.primary = chosen
            self.promotions += 1
            group.acked_seq = max(group.acked_seq, payload["applied_seq"])
        self._spawn_replicas(group)
        return {"gid": gid, "pid": payload["pid"],
                "applied_seq": payload["applied_seq"]}

    # -- backend hooks (reads) ---------------------------------------------------------

    @staticmethod
    def _wire(args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(
            _AggRef(a.name) if isinstance(a, Aggregate) else a
            for a in args)

    def _shard_query(self, gid: int, method: str, *args: Any) -> Any:
        ctx = current_context()
        if ctx is None:
            return self._group_read(self._group(gid), method, args)
        started = time.perf_counter()
        try:
            return self._group_read(self._group(gid), method, args)
        finally:
            ctx.note_shard(gid, time.perf_counter() - started)

    def _read_targets(self, group: ShardGroup,
                      method: str) -> List[Tuple[str, ShardClient]]:
        if method not in REPLICA_READS or not group.replicas:
            return [("primary", group.primary)]
        pool: List[Tuple[str, ShardClient]] = [("primary", group.primary)]
        pool.extend(("replica", c) for c in group.replicas)
        group.rr = (group.rr + 1) % len(pool)  # benign data race
        start = group.rr
        return pool[start:] + pool[:start]

    def _group_read(self, group: ShardGroup, method: str,
                    args: Tuple[Any, ...]) -> Any:
        """One read, failover-aware.

        Targets rotate round-robin over the primary and every replica;
        replica reads are fenced at the group's acked watermark so a
        session always sees its own writes.  A dead or lagging target
        falls through to the next; a dead primary additionally kicks a
        background respawn.  Only when *every* target fails does the
        read block on a synchronous heal (respawn-or-promote).
        """
        wired = self._wire(args)
        last_exc: Optional[BaseException] = None
        for role, client in self._read_targets(group, method):
            if client.dead:
                if role == "primary":
                    self._note_primary_down(group)
                continue
            try:
                if role == "replica":
                    return client.call(_REPLICA_READ, method, wired,
                                       group.acked_seq)
                return client.call(method, *wired)
            except (ShardDownError, ReplicaLagError) as exc:
                last_exc = exc
                if role == "primary":
                    self._note_primary_down(group)
                continue
        try:
            self._ensure_primary(group)
        except ShardDownError:
            raise last_exc or ShardDownError(
                f"group {group.gid} has no serving worker")
        return group.primary.call(method, *wired)

    def _shard_query_batch(self, gid: int,
                           requests: List[Tuple[Any, Any, Any]]
                           ) -> List[Any]:
        # One failover-aware RPC per group instead of the base class's
        # per-query loop: the whole batch rides a single worker sweep.
        # Aggregate descriptors are wired to name tokens here because
        # :meth:`_wire` only sees top-level args, not the nested triples.
        wired = [
            (kr, iv, _AggRef(agg.name) if isinstance(agg, Aggregate)
             else agg)
            for kr, iv, agg in requests
        ]
        return self._shard_query(gid, "aggregate_batch", wired)

    # -- backend hooks (writes) --------------------------------------------------------

    def _shard_write(self, gid: int, method: str, *args: Any) -> Any:
        # Only reached through the base-class update API below when a
        # subclass misses an override; route it with full fencing.
        return self._routed_write(method, args)

    def insert(self, key: int, value: float, t: int) -> None:
        self._routed_write("insert", (key, value, t), key=key, events=1)

    def delete(self, key: int, t: int) -> float:
        return self._routed_write("delete", (key, t), key=key, events=1)

    def update(self, key: int, value: float, t: int) -> None:
        # delete + insert, both logged by the owning primary.
        self._routed_write("update", (key, value, t), key=key, events=2)

    def apply_shard_batch(self, gid: int, ops: Sequence[Any]) -> List[Any]:
        """Apply one commit group's ops, re-routing each by key.

        ``gid`` is the routing hint the server computed at *enqueue*
        time; a split or merge may have moved keys since, so every op is
        re-routed under the topology read lock (the same fencing as
        :meth:`_routed_write`).  Ops are partitioned per group with their
        original positions, each partition is applied as one
        ``apply_batch`` under that group's write lock (order within a
        partition matches arrival order, so per-key ordering is
        preserved), and the per-op results are reassembled in the
        original order.
        """
        del gid  # routing hint only — re-resolved per op below
        ctx = current_context()
        with self._topology_lock.read_locked():
            by_gid: Dict[int, List[Tuple[int, Any]]] = {}
            for pos, op in enumerate(ops):
                by_gid.setdefault(self.shard_index(op[1]), []).append(
                    (pos, op))
            results: List[Any] = [None] * len(ops)
            for g in sorted(by_gid):
                entries = by_gid[g]
                group_ops = [op for _pos, op in entries]
                group = self._group(g)
                started = time.perf_counter() if ctx is not None else 0.0
                with group.write_lock:
                    group_results = self._primary_write(
                        group, "apply_batch", (group_ops,),
                        events=len(group_ops))
                if ctx is not None:
                    ctx.note_shard(g, time.perf_counter() - started)
                for (pos, _op), res in zip(entries, group_results):
                    results[pos] = res
            return results

    def _routed_write(self, method: str, args: Tuple[Any, ...],
                      key: Optional[int] = None,
                      events: int = 1) -> Any:
        """Route one DML statement under the topology read lock.

        Holding the lock shared from routing through acknowledgement is
        what makes the split swap (exclusive) a true barrier: a write
        either lands wholly before the swap (and the split ships it to
        the child) or routes against the new topology.  Writes to a dead
        primary block on the heal path — respawn replays the WAL, so the
        retry applies to a state containing every previously acked write.
        """
        if key is None:
            key = args[0]
        ctx = current_context()
        started = time.perf_counter() if ctx is not None else 0.0
        gid = -1
        try:
            with self._topology_lock.read_locked():
                gid = self.shard_index(key)
                group = self._group(gid)
                with group.write_lock:
                    return self._primary_write(group, method, args, events)
        finally:
            if ctx is not None:
                ctx.note_shard(gid, time.perf_counter() - started)

    def _primary_write(self, group: ShardGroup, method: str,
                       args: Tuple[Any, ...], events: int) -> Any:
        if group.primary.dead:
            self._ensure_primary(group)
        try:
            result = group.primary.call(method, *self._wire(args))
        except ShardDownError:
            # The worker died under this write; ambiguous whether it
            # logged before dying.  Heal and retry once — a duplicate
            # apply surfaces as a typed 1TNF error rather than silence.
            self._ensure_primary(group)
            result = group.primary.call(method, *self._wire(args))
        group.acked_seq += events
        return result

    def load_events(self, events: Sequence[Any],
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    mode: str = "direct") -> IngestReport:
        """Bulk load under the topology read lock — the drain barrier
        that fences splits away from buffered-ingest windows."""
        with self._topology_lock.read_locked():
            return super().load_events(events, batch_size, mode)

    def _load_shards(self, partitions: List[Tuple[int, List[Any]]],
                     batch_size: int, mode: str) -> List[IngestReport]:
        """Per-group parallel LOAD fan-out (runs under the topology read
        lock taken by :meth:`load_events`)."""
        from repro.storage.serialization import pack_events

        resolved: List[Tuple[ShardGroup, int, Any]] = []
        for gid, group_events in partitions:
            group = self._group(gid)
            group.write_lock.acquire()
            try:
                if group.primary.dead:
                    self._ensure_primary(group)
                future = group.primary.call_async(
                    "load_events_packed", pack_events(group_events),
                    batch_size, mode)
            except BaseException:
                group.write_lock.release()
                raise
            resolved.append((group, len(group_events), future))
        reports: List[IngestReport] = []
        failure: Optional[BaseException] = None
        for group, _count, future in resolved:
            try:
                report = future.result()
                group.acked_seq += report.events
                reports.append(report)
            except BaseException as exc:  # noqa: BLE001 — release all
                failure = failure or exc
            finally:
                group.write_lock.release()
        if failure is not None:
            raise failure
        return reports

    @property
    def now(self) -> int:
        """The most recent time any group's primary has seen."""
        return max((g.primary.last_now
                    for g in self._groups_by_gid.values()), default=0)

    # -- split -------------------------------------------------------------------------

    def split(self, gid: int, at: Optional[int] = None) -> Dict[str, Any]:
        """Split group ``gid``'s range at key ``at`` (default: midpoint).

        Phases: (1) checkpoint the parent primary; (2) clone that
        checkpoint — a directory copy — as the child shard's first
        checkpoint; (3) spawn the child worker over the clone; (4) ship
        the parent's WAL tail filtered to the upper half; (5) take the
        topology lock exclusive, ship the final sliver of tail (writers
        are drained, so it cannot grow under us), and swap the routing
        table: parent keeps ``[lo, at)``, child serves ``[at, hi)``.
        Bulk work happens in phases 1–4 with writers still flowing; the
        exclusive window only covers the sliver and the swap.

        The child's warehouse keeps the parent's full key space — its
        clone holds the lower half's history too, which is simply never
        queried (range-clipped routing masks it), keeping stale-topology
        reads exact during the handoff.
        """
        with self._admin_lock:
            group = self._group(gid)
            lo, hi = group.lo, group.hi
            if hi - lo < 2:
                raise QueryError(
                    f"group {gid} spans [{lo}, {hi}) and cannot split")
            if at is None:
                at = (lo + hi) // 2
            if not lo < at < hi:
                raise QueryError(
                    f"split point {at} outside group {gid}'s open span "
                    f"({lo}, {hi})")
            if group.primary.dead:
                self._ensure_primary(group)
            group.primary.call("checkpoint")
            new_gid = self._next_gid
            self._next_gid += 1
            dirname = _group_dir_name(new_gid)
            parent_dir = os.path.join(self._root, group.dirname)
            child_dir = os.path.join(self._root, dirname)
            covered = clone_shard_state(parent_dir, child_dir)
            child = self._spawn_primary(new_gid, group.wh_key_space,
                                        dirname)
            child.wait_ready(self._start_timeout)
            cursor = WALCursor(parent_dir, after_seq=covered)
            upper = KeyRange(at, hi)
            # Two bulk rounds with writers still flowing shrink the tail
            # the exclusive window has to ship.
            self._ship_tail(cursor, child, upper)
            self._ship_tail(cursor, child, upper)
            with self._topology_lock.write_locked():
                self._ship_tail(cursor, child, upper)
                child_group = ShardGroup(new_gid, at, hi,
                                         group.wh_key_space, dirname,
                                         child)
                child_group.acked_seq = child.call("wal_seq")
                group.hi = at
                self._groups_by_gid[new_gid] = child_group
                self._install_topology(
                    list(self._groups_by_gid.values()),
                    version=self._topology.version + 1)
                self._persist_topology()
                self.splits += 1
                self._last_split = time.monotonic()
            self._spawn_replicas(child_group)
        return {"parent": gid, "child": new_gid, "at": at,
                "version": self._topology.version}

    @staticmethod
    def _ship_tail(cursor: WALCursor, child: ShardClient,
                   key_range: KeyRange) -> int:
        """Replay the parent's fresh WAL records whose keys fall in
        ``key_range`` into the child via its (logged) bulk loader.

        A key-filtered subsequence of a chronological stream is itself
        chronological, and the child's clone predates every shipped
        record, so the loader's time-order contract holds.
        """
        shipped = 0
        while True:
            records = cursor.poll()
            if not records:
                return shipped
            rows = [(e.op, e.key, e.value, e.time) for _seq, e in records
                    if key_range.low <= e.key < key_range.high]
            if rows:
                child.call("load_events", rows)
                shipped += len(rows)

    # -- merge -------------------------------------------------------------------------

    def merge(self, gid_a: int, gid_b: int) -> Dict[str, Any]:
        """Merge two *adjacent* groups into a fresh one (the cold path).

        Under the exclusive topology lock (writers drained): reconstruct
        both groups' logical update histories from their temporal tuples
        — each tuple ``(k, [s, e), v)`` becomes ``insert@s`` (+
        ``delete@e`` when closed) — interleave them in time order with
        deletes before inserts at equal instants (1TNF-safe), bulk-load
        into a brand-new worker, and swap both groups out for the merged
        one.  Logical content determines every answer, so the merged
        group answers identically; physical page images differ (it is a
        freshly built tree).
        """
        with self._admin_lock:
            a, b = self._group(gid_a), self._group(gid_b)
            if a.lo > b.lo:
                a, b = b, a
            if a.hi != b.lo:
                raise QueryError(
                    f"groups {a.gid} [{a.lo},{a.hi}) and {b.gid} "
                    f"[{b.lo},{b.hi}) are not adjacent")
            with self._topology_lock.write_locked():
                for group in (a, b):
                    if group.primary.dead:
                        self._ensure_primary(group)
                history = (self._logical_history(a)
                           + self._logical_history(b))
                history.sort(key=lambda row: (row[3], row[0] != "delete",
                                              row[1]))
                new_gid = self._next_gid
                self._next_gid += 1
                dirname = _group_dir_name(new_gid)
                wh_ks = (min(a.wh_key_space[0], b.wh_key_space[0]),
                         max(a.wh_key_space[1], b.wh_key_space[1]))
                merged = self._spawn_primary(new_gid, wh_ks, dirname)
                merged.wait_ready(self._start_timeout)
                if history:
                    merged.call("load_events", history)
                merged_group = ShardGroup(new_gid, a.lo, b.hi, wh_ks,
                                          dirname, merged)
                merged_group.acked_seq = merged.call("wal_seq")
                del self._groups_by_gid[a.gid]
                del self._groups_by_gid[b.gid]
                self._groups_by_gid[new_gid] = merged_group
                self._install_topology(
                    list(self._groups_by_gid.values()),
                    version=self._topology.version + 1)
                self._persist_topology()
                self.merges += 1
                for group in (a, b):
                    for client in [group.primary] + group.replicas:
                        client.request_shutdown()
            self._spawn_replicas(merged_group)
        return {"merged": [a.gid, b.gid], "gid": new_gid,
                "version": self._topology.version}

    def _logical_history(self, group: ShardGroup
                         ) -> List[Tuple[str, int, float, int]]:
        horizon = max(group.primary.last_now + 1, 2)
        tuples = group.primary.call(
            "tuples_in", KeyRange(group.lo, group.hi),
            Interval(1, horizon))
        events: List[Tuple[str, int, float, int]] = []
        for row in tuples:
            start, end = row.interval.start, row.interval.end
            events.append(("insert", row.key, row.value, start))
            if end != NOW and end > start:
                events.append(("delete", row.key, row.value, end))
        return events

    # -- maintenance / observability ---------------------------------------------------

    def checkpoint(self) -> None:
        """Checkpoint every live primary (serialized against splits:
        truncation must not race a split still shipping the tail)."""
        with self._admin_lock:
            futures = []
            for group in list(self._groups_by_gid.values()):
                if group.primary.dead:
                    continue
                try:
                    futures.append(group.primary.call_async("checkpoint"))
                except ShardDownError:
                    continue
            for future in futures:
                try:
                    future.result()
                except ShardDownError:
                    continue

    def cache_snapshot(self) -> CacheSnapshot:
        snapshot = CacheSnapshot()
        for gid, _lo, _hi in self._topology.entries:
            snapshot.merge(self._shard_query(gid, "cache_snapshot"))
        return snapshot

    def batch_snapshot(self) -> Dict[str, int]:
        """Batch-sweep counters merged across every group primary."""
        from repro.core.batch import BatchScanStats

        totals = BatchScanStats()
        for gid, _lo, _hi in self._topology.entries:
            snapshot = self._shard_query(gid, "batch_snapshot")
            if snapshot:
                totals.merge(snapshot)
        return totals.as_dict()

    def page_count(self) -> int:
        return sum(self._shard_query(gid, "page_count")
                   for gid, _lo, _hi in self._topology.entries)

    def check_invariants(self) -> None:
        for gid, _lo, _hi in self._topology.entries:
            self._shard_query(gid, "check_invariants")

    def enable_cache(self, config: Optional[CacheConfig] = None) -> None:
        """Enable the read-path caches on every group primary."""
        config = config or CacheConfig()
        for group in self._groups_by_gid.values():
            group.primary.call("enable_cache", config, False)

    def disable_cache(self) -> None:
        """Disable and drop the read-path caches on every primary."""
        for group in self._groups_by_gid.values():
            group.primary.call("disable_cache")

    def explain_trace(self, key_range: KeyRange, interval: Interval,
                      aggregate: Aggregate = SUM) -> List[Dict[str, Any]]:
        """Per-group EXPLAIN with shipped span trees (primary-only)."""
        rows = []
        for gid, part in self.parts_for(key_range):
            payload = self._group(gid).primary.call(
                _EXPLAIN_TRACE, part, interval, _AggRef(aggregate.name))
            rows.append(dict(payload, shard=gid, key_range=part))
        return rows

    def topology_info(self) -> Dict[str, Any]:
        """The routing table plus per-group worker liveness — the wire
        payload of the ``topology`` protocol op."""
        topo = self._topology
        groups = []
        for gid, lo, hi in topo.entries:
            group = self._groups_by_gid[gid]
            groups.append({
                "gid": gid, "span": [lo, hi], "dir": group.dirname,
                "acked_seq": group.acked_seq,
                "primary": {"pid": group.primary.pid,
                            "alive": not group.primary.dead},
                "replicas": [
                    {"replica": c.spec.replica_id, "pid": c.pid,
                     "alive": not c.dead}
                    for c in group.replicas
                ],
            })
        return {"version": topo.version,
                "key_space": list(self.key_space),
                "groups": groups,
                "counters": {"splits": self.splits, "merges": self.merges,
                             "failovers": self.failovers,
                             "promotions": self.promotions}}

    def worker_stats(self) -> List[Dict[str, Any]]:
        """One row per primary and per replica.

        Primary rows look like the procpool's (plus ``role`` and
        ``acked_seq``); replica rows add ``replica``, ``applied_seq`` and
        ``lag`` (primary WAL sequence minus applied).  The planner feeds
        on the primary rows' ``qps``/``queue_depth``; ``/metrics`` turns
        ``lag`` into the ``repro_cluster_replica_lag`` gauge.
        """
        rows: List[Dict[str, Any]] = []
        scrape: List[Tuple[str, ShardGroup, Any, Any]] = []
        for gid, _lo, _hi in self._topology.entries:
            group = self._groups_by_gid.get(gid)
            if group is None:
                continue
            for role, client in ([("primary", group.primary)]
                                 + [("replica", c)
                                    for c in group.replicas]):
                if client.dead:
                    scrape.append((role, group, client, None))
                    continue
                try:
                    scrape.append((role, group, client,
                                   client.call_async(_STATS)))
                except ShardDownError:
                    scrape.append((role, group, client, None))
        primary_seq: Dict[int, int] = {}
        for role, group, client, future in scrape:
            gid = group.gid
            if future is None:
                row = {"shard": gid, "alive": False, "role": role}
                if role == "replica":
                    row["replica"] = client.spec.replica_id
                rows.append(row)
                continue
            try:
                payload = future.result(10.0)
            except Exception:  # noqa: BLE001 — scrape survives outages
                row = {"shard": gid, "alive": False, "role": role}
                if role == "replica":
                    row["replica"] = client.spec.replica_id
                rows.append(row)
                continue
            key = (gid, role, payload.get("replica", -1))
            qps = rate_since(self._rate_state, key, payload["requests"],
                             time.monotonic())
            row = dict(payload, alive=True, role=role, qps=qps,
                       queue_depth=client.queue_depth)
            if role == "primary":
                primary_seq[gid] = payload.get("wal_seq", 0)
                row["acked_seq"] = group.acked_seq
                group.qps = qps
            else:
                base = primary_seq.get(gid, group.acked_seq)
                row["lag"] = max(0, base - payload.get("applied_seq", 0))
            rows.append(row)
        return rows

    def worker_registries(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Live primaries' metrics registries (same shape as the
        procpool's; replicas keep no caches worth scraping)."""
        futures: List[Tuple[int, Any]] = []
        for gid, _lo, _hi in self._topology.entries:
            group = self._groups_by_gid.get(gid)
            if group is None or group.primary.dead:
                continue
            try:
                futures.append((gid, group.primary.call_async(_REGISTRY)))
            except ShardDownError:
                continue
        rows: List[Tuple[int, Dict[str, Any]]] = []
        for gid, future in futures:
            try:
                rows.append((gid, future.result(10.0)))
            except Exception:  # noqa: BLE001 — scrape survives outages
                continue
        return rows

    # -- probes (tests and the bench's byte-identical check) ---------------------------

    def sync_replicas(self, gid: int,
                      timeout: Optional[float] = None) -> List[int]:
        """Block until every live replica of ``gid`` has applied the
        primary's full log; returns their applied sequences."""
        group = self._group(gid)
        target = group.primary.call("wal_seq")
        return [c.call(_SYNC, target,
                       timeout if timeout is not None
                       else self._sync_timeout)
                for c in group.replicas if not c.dead]

    def replica_probe(self, gid: int, replica: int, method: str,
                      *args: Any) -> Any:
        """Serve ``method`` from one specific replica, fenced at the
        group's acked watermark."""
        group = self._group(gid)
        for client in group.replicas:
            if client.spec.replica_id == replica and not client.dead:
                return client.call(_REPLICA_READ, method,
                                   self._wire(args), group.acked_seq)
        raise ShardDownError(f"group {gid} has no live replica {replica}")

    def primary_probe(self, gid: int, method: str, *args: Any) -> Any:
        """Serve ``method`` from the group's primary, bypassing the
        round-robin read rotation."""
        return self._group(gid).primary.call(method, *self._wire(args))

    # -- worker lifecycle --------------------------------------------------------------

    def shard_pid(self, gid: int) -> Optional[int]:
        """OS pid of group ``gid``'s primary worker process."""
        return self._group(gid).primary.pid

    def shard_alive(self, gid: int) -> bool:
        """Whether group ``gid``'s primary worker is alive."""
        return not self._group(gid).primary.dead

    def respawn(self, gid: int, start_timeout: float = 60.0) -> int:
        """Replace the group's primary with a fresh worker (graceful if
        it is alive, heal-path if it is dead)."""
        group = self._group(gid)
        old = group.primary
        if not old.dead:
            old.request_shutdown()
            old.reap(10.0)
        self._ensure_primary(group)
        return group.primary.pid  # type: ignore[return-value]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the planner and every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._planner is not None:
            self._planner.stop()
        clients: List[ShardClient] = []
        for group in self._groups_by_gid.values():
            clients.append(group.primary)
            clients.extend(group.replicas)
        for client in clients:
            client.request_shutdown()
        for client in clients:
            client.reap()


class ClusterPlanner(threading.Thread):
    """The autosplit/maintenance daemon.

    Every ``interval`` seconds it scrapes the per-group stats rows,
    respawns dead replicas, and — when autosplit is on — splits the
    hottest group once it clears the rate threshold *and* carries at
    least ``split_min_share`` of the cluster's request rate (a uniformly
    busy cluster gains nothing from splitting).  With ``merge_qps`` set,
    two adjacent groups both colder than it are merged.  Ticks never
    propagate exceptions: planning is advisory, serving is not.
    """

    def __init__(self, owner: ClusterWarehouse, interval: float,
                 autosplit: bool, split_qps: float,
                 split_min_share: float, split_cooldown: float,
                 max_groups: int, merge_qps: Optional[float]) -> None:
        super().__init__(daemon=True, name="repro-cluster-planner")
        self.owner = owner
        self.interval = interval
        self.autosplit = autosplit
        self.split_qps = split_qps
        self.split_min_share = split_min_share
        self.split_cooldown = split_cooldown
        self.max_groups = max_groups
        self.merge_qps = merge_qps
        self._halt = threading.Event()

    def stop(self) -> None:
        """Halt the planner loop and join the thread."""
        self._halt.set()
        self.join(timeout=10.0)

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 — advisory thread
                continue

    def tick(self) -> None:
        """One planner round: respawn dead replicas, scrape worker
        stats, and fire an autosplit/automerge if a group qualifies."""
        owner = self.owner
        if owner.closed:
            return
        owner.ensure_replicas()
        rows = owner.worker_stats()
        if not self.autosplit and self.merge_qps is None:
            return
        primaries = [r for r in rows
                     if r.get("role") == "primary" and r.get("alive")]
        if not primaries:
            return
        total_qps = sum(r["qps"] for r in primaries)
        cooled = (time.monotonic() - owner._last_split
                  >= self.split_cooldown)
        if self.autosplit and cooled:
            hot = max(primaries, key=lambda r: r["qps"])
            share = hot["qps"] / total_qps if total_qps > 0 else 0.0
            group = owner._groups_by_gid.get(hot["shard"])
            if (group is not None
                    and hot["qps"] >= self.split_qps
                    and share >= self.split_min_share
                    and len(primaries) < self.max_groups
                    and group.hi - group.lo >= 2):
                owner.split(group.gid)
                return
        if self.merge_qps is not None and cooled and len(primaries) > 1:
            by_gid = {r["shard"]: r for r in primaries}
            entries = owner._topology.entries
            for (gid_a, _l1, _h1), (gid_b, _l2, _h2) in zip(
                    entries, entries[1:]):
                ra, rb = by_gid.get(gid_a), by_gid.get(gid_b)
                if (ra is not None and rb is not None
                        and ra["qps"] <= self.merge_qps
                        and rb["qps"] <= self.merge_qps):
                    owner.merge(gid_a, gid_b)
                    owner._last_split = time.monotonic()
                    return


def _group_dir_name(gid: int) -> str:
    """On-disk directory of group ``gid`` (same scheme the static
    backends use, so an un-split cluster directory is procpool-shaped)."""
    return f"shard-{gid:02d}"


def clone_shard_state(src_dir: str, dst_dir: str) -> int:
    """Copy ``src_dir``'s current checkpoint as ``dst_dir``'s first one.

    The checkpoint directory is an immutable self-contained snapshot
    (both trees' pages plus the covered-WAL-sequence metadata), so a
    plain file copy is a consistent clone — no tree traversal, no page
    decoding.  The clone's metadata is rewritten to cover sequence 0 of
    the *child's own* (empty) log: the child starts a fresh WAL lineage,
    and the parent's tail is shipped to it explicitly by the split.

    Returns the parent WAL sequence the clone covers.  The caller must
    hold the cluster admin lock so the parent cannot checkpoint again
    (and garbage-collect ``src``'s checkpoint) mid-copy.
    """
    from repro.core.warehouse import TemporalWarehouse

    ckpt_dir, covered = TemporalWarehouse.current_checkpoint(src_dir)
    if ckpt_dir is None:
        raise StorageError(
            f"cannot clone {src_dir}: no checkpoint (checkpoint the "
            "primary first)")
    name = f"ckpt-{0:020d}"
    target = os.path.join(dst_dir, "checkpoints", name)
    shutil.rmtree(target, ignore_errors=True)
    os.makedirs(os.path.dirname(target), exist_ok=True)
    shutil.copytree(ckpt_dir, target)
    meta = os.path.join(target, TemporalWarehouse._CKPT_META_FILE)
    with open(meta, "w") as fh:
        json.dump({"wal_last_seq": 0}, fh)
    current = os.path.join(dst_dir, TemporalWarehouse._CURRENT_FILE)
    tmp = current + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(name + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, current)
    return covered
