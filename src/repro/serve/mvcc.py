"""Seqlock epochs and stats for the MVCC read/write path.

The MVSBT/MVBT are partially persistent: historical pages are immutable
and only the open frontier is rewritten in place.  That is exactly the
structure multiversion concurrency control exploits (Seeger et al.;
Sela & Petrank for aggregate reads): a reader that observes a
*consistent* frontier needs no lock at all, and consistency is checkable
after the fact with a sequence lock.

:class:`ShardEpoch` is that sequence lock, one per shard.  The writer —
already exclusive per shard via the write lock or the server's commit
group — brackets every mutation between :meth:`~ShardEpoch.begin_write`
(bumps the word to odd) and :meth:`~ShardEpoch.end_write` (bumps it back
to even).  A reader captures the word at entry, runs the full traversal
against the shared tree with **no lock held**, and validates at exit:

* captured word **odd** → a write was mid-flight; conflict.
* word **changed** across the read → a write landed underneath the
  traversal, which may therefore be torn; conflict.
* otherwise the traversal saw one consistent version — the answer is
  byte-identical to what the read lock would have produced.

On conflict the reader retries (bounded) and finally falls back to the
plain read lock, so progress is guaranteed even under a write storm;
the fallback count is the honesty metric — the reader-isolation bench
asserts it stays **zero** in the happy path.

Mutating the word is a plain ``+= 1``: only the (exclusive) writer ever
writes it, readers only load it, and the GIL orders the loads against
the stores.  This is deliberately not a C-level atomic — the protocol
needs writer-exclusivity anyway, which the existing locks provide.
"""

from __future__ import annotations

import threading
from typing import Dict


#: Default bounded-retry budget before an optimistic reader falls back
#: to the read lock.  Six retries rides out several back-to-back commit
#: groups without risking unbounded starvation on a write-saturated core.
DEFAULT_READ_RETRIES = 6


class ShardEpoch:
    """One shard's seqlock word: odd while a write is in flight."""

    __slots__ = ("_word",)

    def __init__(self) -> None:
        self._word = 0

    def begin_write(self) -> None:
        """Mark a write in flight (call with the shard write lock held)."""
        self._word += 1

    def end_write(self) -> None:
        """Publish the write (word returns to even)."""
        self._word += 1

    def read_begin(self) -> int:
        """Capture the word at read entry (odd means conflict already)."""
        return self._word

    def read_validate(self, started: int) -> bool:
        """True iff a read that started at ``started`` saw a torn-free
        frontier: the word was even at entry and unchanged at exit."""
        return started % 2 == 0 and self._word == started

    @property
    def value(self) -> int:
        return self._word


class MVCCStats:
    """Concurrency counters one sharded warehouse maintains.

    ``optimistic`` — reads answered without any lock; ``retries`` —
    conflict-driven re-traversals; ``fallbacks`` — reads that exhausted
    the retry budget and took the read lock (0 in the happy path).
    """

    __slots__ = ("_lock", "optimistic", "retries", "fallbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.optimistic = 0
        self.retries = 0
        self.fallbacks = 0

    def note_optimistic(self) -> None:
        """Count one read answered lock-free (validated clean)."""
        with self._lock:
            self.optimistic += 1

    def note_retry(self) -> None:
        """Count one conflict-driven re-traversal."""
        with self._lock:
            self.retries += 1

    def note_fallback(self) -> None:
        """Count one read that gave up and took the read lock."""
        with self._lock:
            self.fallbacks += 1

    def as_dict(self) -> Dict[str, int]:
        """A consistent snapshot of the three counters."""
        with self._lock:
            return {"optimistic": self.optimistic, "retries": self.retries,
                    "fallbacks": self.fallbacks}
