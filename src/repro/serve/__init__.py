"""repro.serve — a concurrent TQL query server with snapshot isolation.

The production face of the warehouse: more than one client (and more than
one thread) using the temporal store at once.  The pieces:

* :mod:`repro.serve.sharded` — :class:`ShardedWarehouse`, key-range
  partitioning over N :class:`~repro.core.warehouse.TemporalWarehouse`
  shards with exact scatter-gather aggregates;
* :mod:`repro.serve.procpool` — :class:`ProcessShardedWarehouse`, the
  process-per-shard backend (``--executor process``): one worker process
  owns each shard outright, escaping the GIL for multi-core serving;
* :mod:`repro.serve.cluster` — :class:`ClusterWarehouse`, the elastic
  cluster plane over the process backend: online shard split/merge,
  WAL-shipped read replicas (:mod:`repro.serve.replica`), and router
  failover (``--replicas`` / ``--autosplit``);
* :mod:`repro.serve.rwlock` — the per-shard readers-writer lock behind
  single-writer / multi-reader concurrency;
* :mod:`repro.serve.server` — the asyncio TCP server: newline-delimited
  JSON protocol, AS OF snapshot sessions, admission control
  (``SERVER_BUSY`` backpressure, per-request timeouts), metrics, and
  graceful drain-checkpoint-shutdown;
* :mod:`repro.serve.protocol` — message schemas and result encoding;
* :mod:`repro.serve.client` — a small blocking client;
* :mod:`repro.serve.loadgen` — ``python -m repro.serve.loadgen``, the
  closed-loop concurrency benchmark writing ``BENCH_serve.json``.

Protocol spec, error codes, routing rules, and snapshot semantics are
documented in ``docs/SERVING.md``.  Names re-export lazily (PEP 562), so
importing :mod:`repro.serve` costs nothing until used.
"""

from __future__ import annotations

from typing import Any

#: name -> submodule providing it; resolved on first attribute access.
_EXPORTS = {
    "ShardedWarehouse": "repro.serve.sharded",
    "ShardRouter": "repro.serve.sharded",
    "ShardPlan": "repro.serve.sharded",
    "ProcessShardedWarehouse": "repro.serve.procpool",
    "ShardSpec": "repro.serve.procpool",
    "ClusterWarehouse": "repro.serve.cluster",
    "ClusterPlanner": "repro.serve.cluster",
    "ReplicaSpec": "repro.serve.replica",
    "ReadWriteLock": "repro.serve.rwlock",
    "ServerConfig": "repro.serve.server",
    "TQLServer": "repro.serve.server",
    "ServerHandle": "repro.serve.server",
    "serve_in_thread": "repro.serve.server",
    "Client": "repro.serve.client",
    "ServerReplyError": "repro.serve.client",
    "PROTOCOL_VERSION": "repro.serve.protocol",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.serve' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return __all__
