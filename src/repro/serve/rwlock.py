"""A writer-preferring readers-writer lock for per-shard concurrency.

The serve layer's concurrency control is single-writer / multi-reader per
shard: closed MVSBT/MVBT versions are immutable, so any number of snapshot
readers can share a shard while exactly one writer advances ``now`` — but
the :class:`~repro.storage.buffer.BufferPool` beneath both is a mutable
LRU cache, so reads still need mutual exclusion against the writer at the
page layer.  This lock provides that: readers hold it shared, the shard's
writer queue holds it exclusive.

Writer preference (new readers wait once a writer is queued) keeps a
steady read load from starving ingest; readers already inside finish
first, which bounds writer wait by the longest running query.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Shared/exclusive lock: many readers or one writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (reader) side --------------------------------------------------

    def acquire_read(self, timeout: float = None) -> bool:
        """Take the lock shared; blocks while a writer holds or awaits it.

        Returns ``False`` if ``timeout`` (seconds) elapsed first.
        """
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout,
            )
            if not ok:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        """Release one shared hold."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` form of the shared side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- exclusive (writer) side -----------------------------------------------

    def acquire_write(self, timeout: float = None) -> bool:
        """Take the lock exclusive; blocks until all readers drain."""
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout,
                )
                if not ok:
                    return False
                self._writer_active = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` form of the exclusive side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection ----------------------------------------------------------

    @property
    def readers(self) -> int:
        """Current shared holders (racy; debugging/metrics only)."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        """True while a writer holds the lock (racy; debugging only)."""
        return self._writer_active
