"""A writer-preferring readers-writer lock for per-shard concurrency.

The serve layer's concurrency control is single-writer / multi-reader per
shard: closed MVSBT/MVBT versions are immutable, so any number of snapshot
readers can share a shard while exactly one writer advances ``now`` — but
the :class:`~repro.storage.buffer.BufferPool` beneath both is a mutable
LRU cache, so reads still need mutual exclusion against the writer at the
page layer.  This lock provides that: readers hold it shared, the shard's
writer queue holds it exclusive.

Writer preference (new readers wait once a writer is queued) keeps a
steady read load from starving ingest; readers already inside finish
first, which bounds writer wait by the longest running query.

Contention is observable: :meth:`ReadWriteLock.attach_metrics` wires the
lock into a :class:`~repro.obs.metrics.MetricsRegistry`, after which every
acquisition records its wait time in a per-side histogram
(``repro_rwlock_wait_seconds{side="read"|"write", ...}``) and the current
holder counts surface as gauges (``repro_rwlock_holders``) — replacing the
racy :attr:`readers` / :attr:`writer_active` accessors as the only window
into lock pressure.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional

#: Wait-time buckets in seconds: most acquisitions are uncontended
#: (microseconds); the tail is bounded by the longest running query.
WAIT_BUCKETS = (0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class _LockMetrics:
    """Instrument handles one lock publishes into (created on attach)."""

    __slots__ = ("read_wait", "write_wait", "read_holders", "write_holders")

    def __init__(self, registry, labels: Mapping[str, str]) -> None:
        self.read_wait = registry.histogram(
            "repro_rwlock_wait_seconds",
            "seconds spent waiting to acquire the shard RW lock",
            {**labels, "side": "read"}, buckets=WAIT_BUCKETS)
        self.write_wait = registry.histogram(
            "repro_rwlock_wait_seconds",
            "seconds spent waiting to acquire the shard RW lock",
            {**labels, "side": "write"}, buckets=WAIT_BUCKETS)
        self.read_holders = registry.gauge(
            "repro_rwlock_holders", "current holders of the shard RW lock",
            {**labels, "side": "read"})
        self.write_holders = registry.gauge(
            "repro_rwlock_holders", "current holders of the shard RW lock",
            {**labels, "side": "write"})


class ReadWriteLock:
    """Shared/exclusive lock: many readers or one writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._metrics: Optional[_LockMetrics] = None

    def attach_metrics(self, registry, labels:
                       Optional[Mapping[str, str]] = None) -> None:
        """Publish wait-time histograms and holder gauges into ``registry``.

        ``labels`` (e.g. ``{"shard": "2"}``) distinguish locks sharing one
        registry.  Until attached, acquisitions skip all bookkeeping with
        a single branch, so the uninstrumented path costs nothing extra.
        """
        self._metrics = _LockMetrics(registry, labels or {})

    # -- shared (reader) side --------------------------------------------------

    def acquire_read(self, timeout: float = None) -> bool:
        """Take the lock shared; blocks while a writer holds or awaits it.

        Returns ``False`` if ``timeout`` (seconds) elapsed first.
        """
        metrics = self._metrics
        waited = time.perf_counter() if metrics is not None else 0.0
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout,
            )
            if not ok:
                return False
            self._readers += 1
            if metrics is not None:
                metrics.read_wait.observe(time.perf_counter() - waited)
                metrics.read_holders.set(self._readers)
            return True

    def release_read(self) -> None:
        """Release one shared hold."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._metrics is not None:
                self._metrics.read_holders.set(self._readers)
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` form of the shared side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- exclusive (writer) side -----------------------------------------------

    def acquire_write(self, timeout: float = None) -> bool:
        """Take the lock exclusive; blocks until all readers drain."""
        metrics = self._metrics
        waited = time.perf_counter() if metrics is not None else 0.0
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout,
                )
                if not ok:
                    return False
                self._writer_active = True
                if metrics is not None:
                    metrics.write_wait.observe(time.perf_counter() - waited)
                    metrics.write_holders.set(1)
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            if self._metrics is not None:
                self._metrics.write_holders.set(0)
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` form of the exclusive side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection ----------------------------------------------------------

    @property
    def readers(self) -> int:
        """Current shared holders (racy; debugging/metrics only)."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        """True while a writer holds the lock (racy; debugging only)."""
        return self._writer_active
