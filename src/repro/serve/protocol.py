"""The newline-delimited JSON protocol spoken by :mod:`repro.serve`.

One request per line, one response per line, always in order.  Requests
are JSON objects with an ``op`` field; responses echo the request's
``id`` (if any) and carry either ``"ok": true`` with a ``result`` or
``"ok": false`` with an ``error`` object ``{"code", "message"}`` whose
codes come from :mod:`repro.errors`.  The full schema and every error
code are specified in ``docs/SERVING.md``.

Ops:

``query``
    Execute one TQL statement (``tql`` field).  Reads run pinned to the
    session's snapshot time unless the request carries ``as_of``.
``snapshot``
    Re-pin the session snapshot to the warehouse's current ``now`` and
    return it.
``metrics``
    The server's metrics registry as JSON.
``metrics_text``
    The same registry rendered in the Prometheus text exposition format
    (one string result) — identical to what the ``--metrics-port`` HTTP
    endpoint serves at ``/metrics``.
``slowlog``
    Recent slow-request entries (newest first; optional ``limit``
    field): request ID, op, TQL, latency with its queue/exec split,
    trace ID when sampled, and the captured EXPLAIN span tree + cache
    outcome.  Populated when the server runs with ``--slow-ms``.
``ping``
    Liveness probe; returns ``"pong"``.
``sleep``
    Hold an execution slot for ``seconds`` (diagnostics: makes admission
    control and timeouts testable; subject to both).
``load``
    Bulk-ingest a chronologically sorted batch of ``[op, key, value,
    time]`` rows (``events`` field, optional ``batch_size`` and ``mode``
    — ``"direct"`` or ``"buffered"``, defaulting to the server's
    ``--ingest`` setting).  The batch is partitioned by shard key range;
    under the process executor every partition crosses the worker pipe
    as one packed columnar buffer and loads concurrently.  Returns the
    merged ingest report (including ``buffered_events``).
``respawn``
    Replace a dead shard worker (``shard`` field; process executor
    only).  Durable shards recover via WAL replay in the fresh worker.
``topology``
    The cluster routing table (cluster backend only): per-group key
    spans, primary/replica pids and liveness, acked WAL sequences, and
    the split/merge/failover/promotion counters.
``split``
    Split one shard group's key range online (``gid`` field, optional
    ``at`` split key, default midpoint).  Returns the child group id
    and the new topology version.
``merge``
    Merge two adjacent shard groups (``gids`` field, a two-element
    array) into a fresh group serving the union span.
``promote``
    Hand a group's write role to one of its replicas (``gid`` field,
    optional ``replica`` id).
``shutdown``
    Begin graceful shutdown: drain in-flight work, checkpoint, exit.

Results are encoded by :func:`to_jsonable`: intervals become
``[start, end]`` with the alive sentinel rendered as ``"now"``, temporal
tuples become objects, plans become their dataclass dicts.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from repro.core.model import Interval, KeyRange, NOW, TemporalTuple
from repro.errors import ProtocolError

#: Protocol revision; servers report it in the hello line.
PROTOCOL_VERSION = 1

#: Every op the server understands.
OPS = ("query", "snapshot", "metrics", "metrics_text", "slowlog", "ping",
       "sleep", "load", "respawn", "topology", "split", "merge",
       "promote", "shutdown")


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the ``\\n`` terminator."""
    return (json.dumps(message, separators=(",", ":"),
                       default=_json_default) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one request line; malformed input raises
    :class:`~repro.errors.ProtocolError` (code ``PROTOCOL``)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    op = message.get("op")
    if op not in OPS:
        # Carry the request id on the exception: decode fails before the
        # server ever sees the message, and without the id the error
        # response cannot be correlated by a pipelining client.
        request_id = message.get("id")
        suffix = (f" (request {request_id!r})"
                  if request_id is not None else "")
        exc = ProtocolError(
            f"unknown op {op!r}{suffix}; expected one of {', '.join(OPS)}"
        )
        exc.request_id = request_id
        raise exc
    return message


def _json_default(value: Any) -> Any:
    if isinstance(value, float) and value in (float("inf"), float("-inf")):
        return str(value)
    return str(value)


def _end_to_json(end: int) -> Any:
    return "now" if end == NOW else end


def to_jsonable(result: Any) -> Any:
    """Convert an executor result into plain JSON-serializable data.

    Handles every result shape :func:`repro.tql.executor.execute` can
    produce; unknown objects fall back to ``str()`` so a response can
    always be written.
    """
    if result is None or isinstance(result, (bool, int, float, str)):
        return result
    if isinstance(result, Interval):
        return [result.start, _end_to_json(result.end)]
    if isinstance(result, KeyRange):
        return [result.low, result.high]
    if isinstance(result, TemporalTuple):
        return {"key": result.key, "value": result.value,
                "start": result.interval.start,
                "end": _end_to_json(result.interval.end)}
    if isinstance(result, (list, tuple)):
        return [to_jsonable(item) for item in result]
    if isinstance(result, dict):
        return {str(k): to_jsonable(v) for k, v in result.items()}
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {field.name: to_jsonable(getattr(result, field.name))
                for field in dataclasses.fields(result)}
    return str(result)


def ok_response(request_id: Any, result: Any,
                snapshot: Optional[int] = None,
                elapsed_ms: Optional[float] = None) -> Dict[str, Any]:
    """A success response; ``snapshot`` reports the pinned read time."""
    response: Dict[str, Any] = {"id": request_id, "ok": True,
                                "result": to_jsonable(result)}
    if snapshot is not None:
        response["snapshot"] = snapshot
    if elapsed_ms is not None:
        response["elapsed_ms"] = round(elapsed_ms, 3)
    return response


def error_response(request_id: Any,
                   error: Dict[str, str]) -> Dict[str, Any]:
    """A failure response around an :func:`repro.errors.error_payload`."""
    return {"id": request_id, "ok": False, "error": error}
