"""Key-range sharding: N :class:`TemporalWarehouse` shards behind one API.

Two execution backends share one routing and gather layer:

* :class:`ShardRouter` — the backend-agnostic core.  It owns the partition
  boundaries, routes updates to the owning shard, scatters aggregate
  queries over the shards whose range intersects the query rectangle, and
  gathers: SUM/COUNT add, AVG recombines per-shard SUM and COUNT totals
  (never per-shard averages), MIN/MAX take the extremum of non-empty
  shards.  Additive gathers are exact — each tuple lives in exactly one
  shard, so the per-shard partial aggregates partition the
  single-warehouse answer.  The gather arithmetic (including iteration
  order) lives *only* here, which is what makes answers byte-identical
  across backends.  Backends supply two hooks: ``_shard_query(index,
  method, *args)`` and ``_shard_write(index, method, *args)``.
* :class:`ShardedWarehouse` — the in-process backend: one
  :class:`TemporalWarehouse` per range in this process, shared-thread
  execution.  :class:`~repro.serve.procpool.ProcessShardedWarehouse` is
  the process-per-shard backend; it implements the same hooks over a
  request/response pipe.

Concurrency (``thread_safe=True``, the mode :mod:`repro.serve.server`
runs) is single-writer / multi-reader *per shard*: updates take the
shard's :class:`~repro.serve.rwlock.ReadWriteLock` exclusive, queries take
it shared, and each shard's buffer pools additionally enable internal
locking so concurrent readers cannot race the LRU bookkeeping
(:meth:`~repro.storage.buffer.BufferPool.enable_locking`).  Scatter-gather
locks one shard at a time; cross-shard stability comes from ``AS OF``
snapshot semantics — a query whose rectangle ends at or before the
snapshot time only touches closed (immutable) versions, so its answer
cannot reflect a partially applied update (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.aggregates import Aggregate, AVG, COUNT, MAX, MIN, SUM
from repro.core.cache import CacheConfig, CacheSnapshot
from repro.core.ingest import DEFAULT_BATCH_SIZE, IngestReport, coerce_events
from repro.core.model import Interval, KeyRange, MAX_KEY, TemporalTuple
from repro.core.rta import RTAResult
from repro.core.warehouse import QueryPlan, TemporalWarehouse
from repro.errors import QueryError, ShardRoutingError
from repro.serve.mvcc import DEFAULT_READ_RETRIES, MVCCStats, ShardEpoch
from repro.serve.rwlock import ReadWriteLock
from repro.serve.telemetry import current_context

_LAYOUT_FILE = "layout.json"


@dataclass(frozen=True)
class ShardPlan:
    """One shard's contribution to a scatter-gather EXPLAIN."""

    shard: int
    key_range: KeyRange
    plan: QueryPlan


class _ShardedAggregates:
    """Duck-types the slice of :class:`~repro.core.rta.RTAIndex` the TQL
    executor uses (``timeline``), gathering bucket-wise over shards."""

    def __init__(self, owner: "ShardRouter") -> None:
        self._owner = owner

    def timeline(self, key_range: KeyRange, interval: Interval,
                 buckets: int, aggregate: Aggregate = SUM
                 ) -> List[Tuple[Interval, Optional[float]]]:
        """Time-bucketed rollup, bucket boundaries identical to
        :meth:`repro.core.rta.RTAIndex.timeline`."""
        if buckets < 1:
            raise QueryError("timeline needs at least one bucket")
        span = interval.length
        if buckets > span:
            raise QueryError(
                f"cannot split {span} instants into {buckets} buckets"
            )
        edges = [
            interval.start + span * i // buckets for i in range(buckets + 1)
        ]
        return [
            (Interval(lo, hi),
             self._owner.aggregate(key_range, Interval(lo, hi), aggregate))
            for lo, hi in zip(edges, edges[1:])
        ]


class ShardRouter:
    """Routing and exact scatter-gather over key-range partitions.

    Subclasses own the shards (local objects or worker processes) and
    implement:

    * ``_shard_query(index, method, *args)`` — invoke ``method`` on shard
      ``index``'s :class:`TemporalWarehouse` under shared (read) access;
    * ``_shard_write(index, method, *args)`` — the same under exclusive
      (write) access;
    * ``now`` — the most recent time any shard has seen.

    Arguments cross the hook as plain model dataclasses
    (:class:`KeyRange`, :class:`Interval`) plus :class:`Aggregate`
    descriptors; remote backends serialize descriptors by name (their
    ``combine`` lambdas never cross a process boundary).
    """

    key_space: Tuple[int, int]
    boundaries: List[int]

    # -- backend hooks -----------------------------------------------------------------

    def _shard_query(self, index: int, method: str, *args: Any) -> Any:
        raise NotImplementedError

    def _shard_write(self, index: int, method: str, *args: Any) -> Any:
        raise NotImplementedError

    @property
    def now(self) -> int:
        """The most recent time any shard has seen."""
        raise NotImplementedError

    # -- routing -----------------------------------------------------------------------

    @staticmethod
    def _split(key_space: Tuple[int, int], shards: int) -> List[int]:
        lo, hi = key_space
        if shards < 1:
            raise ValueError("need at least one shard")
        if hi - lo < shards:
            raise ValueError(
                f"key space {key_space} is smaller than {shards} shards"
            )
        return [lo + (hi - lo) * i // shards for i in range(shards + 1)]

    @property
    def shard_count(self) -> int:
        return len(self.boundaries) - 1

    def shard_index(self, key: int) -> int:
        """The shard owning ``key``; raises on out-of-domain keys."""
        lo, hi = self.key_space
        if not lo <= key < hi:
            raise ShardRoutingError(
                f"key {key} outside key space [{lo}, {hi})"
            )
        return bisect_right(self.boundaries, key) - 1

    def parts_for(self, key_range: KeyRange) -> List[Tuple[int, KeyRange]]:
        """``(shard index, clipped key range)`` pairs the range touches.

        Ranges beyond the key space clip silently (those keys hold no
        tuples), so queries never fail on routing — only updates do.
        """
        parts: List[Tuple[int, KeyRange]] = []
        for index, (lo, hi) in enumerate(
                zip(self.boundaries, self.boundaries[1:])):
            clipped = key_range.intersection(KeyRange(lo, hi))
            if clipped is not None:
                parts.append((index, clipped))
        return parts

    # -- update API --------------------------------------------------------------------

    def insert(self, key: int, value: float, t: int) -> None:
        """Insert a tuple alive from ``t`` into the owning shard."""
        self._shard_write(self.shard_index(key), "insert", key, value, t)

    def delete(self, key: int, t: int) -> float:
        """Logically delete the alive tuple with ``key`` at ``t``."""
        return self._shard_write(self.shard_index(key), "delete", key, t)

    def update(self, key: int, value: float, t: int) -> None:
        """Replace the alive tuple's value at ``t`` (one shard, atomic
        under that shard's exclusive access)."""
        self._shard_write(self.shard_index(key), "update", key, value, t)

    def apply_shard_batch(self, index: int,
                          ops: Sequence[Tuple]) -> List[Tuple[str, Any]]:
        """Apply one commit group's ops on shard ``index`` in one
        exclusive acquisition (see
        :meth:`repro.core.warehouse.TemporalWarehouse.apply_batch`).

        The caller has already routed every op to ``index``; backends
        whose routing can shift underneath a queued group (the cluster's
        online splits) override this and re-route by key at commit time.
        """
        return self._shard_write(index, "apply_batch", list(ops))

    def load_events(self, events: Sequence[Any],
                    batch_size: int = DEFAULT_BATCH_SIZE,
                    mode: str = "direct") -> IngestReport:
        """Bulk-apply a chronologically sorted update batch, shard-wise.

        Events are ``(op, key, value, time)`` tuples or any objects with
        those attributes (see :func:`repro.core.ingest.coerce_events`).
        The batch is partitioned by shard key range and each partition is
        driven through the shard's :class:`~repro.core.ingest.BatchLoader`
        — a per-shard subsequence of a sorted stream is itself sorted, so
        partitioning preserves the loader's chronological contract.
        ``mode="buffered"`` selects the buffer-tree ingest path inside
        each shard warehouse (byte-identical answers, amortized CPU).
        Backends may drive the per-shard loads concurrently
        (:meth:`_load_shards`); the merged :class:`IngestReport` is
        returned either way.
        """
        coerced = coerce_events(events)
        last = None
        for event in coerced:
            if last is not None and event.time < last:
                raise QueryError(
                    f"LOAD batch not chronological: t={event.time} "
                    f"after t={last}"
                )
            last = event.time
        partitions: Dict[int, List[Any]] = {}
        for event in coerced:
            partitions.setdefault(self.shard_index(event.key),
                                  []).append(event)
        reports = self._load_shards(sorted(partitions.items()), batch_size,
                                    mode)
        merged = IngestReport()
        for report in reports:
            merged.events += report.events
            merged.inserts += report.inserts
            merged.deletes += report.deletes
            merged.batches += report.batches
            merged.flushed_pages += report.flushed_pages
            merged.buffered_events += report.buffered_events
        return merged

    def _load_shards(self, partitions: List[Tuple[int, List[Any]]],
                     batch_size: int, mode: str) -> List[IngestReport]:
        """Drive each shard's loader; sequential by default, backends with
        real parallelism override."""
        return [
            self._shard_write(index, "load_events", events, batch_size,
                              mode)
            for index, events in partitions
        ]

    # -- query API ---------------------------------------------------------------------

    def aggregate(self, key_range: KeyRange, interval: Interval,
                  aggregate: Aggregate = SUM) -> Optional[float]:
        """Scatter-gather aggregate of one key-time rectangle."""
        parts = self.parts_for(key_range)
        if aggregate.name == AVG.name:
            total = self.aggregate_all(key_range, interval)
            return total.avg
        if aggregate.name in (MIN.name, MAX.name):
            extrema = [
                self._shard_query(i, "aggregate", part, interval, aggregate)
                for i, part in parts
            ]
            extrema = [x for x in extrema if x is not None]
            if not extrema:
                return None
            return min(extrema) if aggregate.name == MIN.name else max(extrema)
        if aggregate.name not in (SUM.name, COUNT.name):
            raise QueryError(f"unknown aggregate {aggregate.name!r}")
        return sum(
            self._shard_query(i, "aggregate", part, interval, aggregate)
            for i, part in parts
        )

    def aggregate_all(self, key_range: KeyRange,
                      interval: Interval) -> RTAResult:
        """SUM, COUNT and AVG gathered from per-shard totals."""
        total_sum = 0.0
        total_count = 0.0
        for i, part in self.parts_for(key_range):
            partial = self._shard_query(i, "aggregate_all", part, interval)
            total_sum += partial.sum
            total_count += partial.count
        return RTAResult(sum=total_sum, count=total_count)

    def aggregate_batch(self, queries) -> List[Any]:
        """Scatter-gather many aggregate queries with one batch per shard.

        ``queries`` is a sequence of ``(key_range, interval, aggregate)``
        triples.  Each query's rectangle is split over the shards it
        touches exactly as :meth:`aggregate` does, but all sub-queries
        landing on one shard travel together through
        :meth:`_shard_query_batch` — one shard acquisition, one MVSBT
        sweep — and the gather arithmetic (iteration order included) is
        the same code shape as the serial path, so answers are
        byte-identical.  AVG queries ship per-part ``aggregate_all``
        sub-queries (aggregate ``None``) and recombine SUM/COUNT totals,
        never per-shard averages.  A failing query yields its exception
        instance in its slot; the rest of the batch is unaffected.
        """
        queries = list(queries)
        shard_requests: Dict[int, List[Tuple]] = {}
        recipes: List[Tuple] = []
        for key_range, interval, aggregate in queries:
            name = getattr(aggregate, "name", None)
            if name == AVG.name:
                kind, sub = "avg", None  # per-part aggregate_all
            elif name in (MIN.name, MAX.name):
                kind, sub = name, aggregate
            elif name in (SUM.name, COUNT.name):
                kind, sub = "sum", aggregate
            else:
                recipes.append(("error",
                                QueryError(f"unknown aggregate {name!r}")))
                continue
            slots: List[Tuple[int, int]] = []
            for i, part in self.parts_for(key_range):
                requests = shard_requests.setdefault(i, [])
                slots.append((i, len(requests)))
                requests.append((part, interval, sub))
            recipes.append((kind, slots))
        shard_results: Dict[int, List[Any]] = {
            i: self._shard_query_batch(i, requests)
            for i, requests in sorted(shard_requests.items())
        }
        out: List[Any] = []
        for recipe in recipes:
            kind = recipe[0]
            if kind == "error":
                out.append(recipe[1])
                continue
            partials = [shard_results[i][slot] for i, slot in recipe[1]]
            failed = next((p for p in partials
                           if isinstance(p, BaseException)), None)
            if failed is not None:
                out.append(failed)
                continue
            if kind == "avg":
                total_sum = 0.0
                total_count = 0.0
                for partial in partials:
                    total_sum += partial.sum
                    total_count += partial.count
                out.append(RTAResult(sum=total_sum, count=total_count).avg)
            elif kind in (MIN.name, MAX.name):
                extrema = [x for x in partials if x is not None]
                if not extrema:
                    out.append(None)
                else:
                    out.append(min(extrema) if kind == MIN.name
                               else max(extrema))
            else:
                out.append(sum(partials))
        return out

    def _shard_query_batch(self, index: int, requests: List[Tuple]
                           ) -> List[Any]:
        """Answer one shard's batched sub-queries, errors in-band.

        Base implementation degrades to serial :meth:`_shard_query`
        calls so every backend supports :meth:`aggregate_batch`;
        backends with a real batch kernel override it.  An aggregate of
        ``None`` requests ``aggregate_all`` for that sub-query.
        """
        out: List[Any] = []
        for key_range, interval, aggregate in requests:
            try:
                if aggregate is None:
                    out.append(self._shard_query(index, "aggregate_all",
                                                 key_range, interval))
                else:
                    out.append(self._shard_query(index, "aggregate",
                                                 key_range, interval,
                                                 aggregate))
            except Exception as exc:
                out.append(exc)
        return out

    def batch_snapshot(self) -> Dict[str, int]:
        """Batch-sweep counters merged across every shard."""
        from repro.core.batch import BatchScanStats

        totals = BatchScanStats()
        for index in range(self.shard_count):
            snapshot = self._shard_query(index, "batch_snapshot")
            if snapshot:
                totals.merge(snapshot)
        return totals.as_dict()

    def sum(self, key_range: KeyRange, interval: Interval) -> float:
        """Scatter-gather SUM."""
        return self.aggregate(key_range, interval, SUM)

    def count(self, key_range: KeyRange, interval: Interval) -> float:
        """Scatter-gather COUNT."""
        return self.aggregate(key_range, interval, COUNT)

    def avg(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """AVG from gathered SUM and COUNT totals; ``None`` when empty."""
        return self.aggregate(key_range, interval, AVG)

    def min(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """Minimum over non-empty shards; ``None`` when all are empty."""
        return self.aggregate(key_range, interval, MIN)

    def max(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """Maximum over non-empty shards; ``None`` when all are empty."""
        return self.aggregate(key_range, interval, MAX)

    # -- tuple retrieval ---------------------------------------------------------------

    def snapshot(self, key_range: KeyRange,
                 t: int) -> List[Tuple[int, float]]:
        """Alive ``(key, value)`` pairs at ``t``; shard order is key order,
        so concatenation is already sorted."""
        out: List[Tuple[int, float]] = []
        for i, part in self.parts_for(key_range):
            out.extend(self._shard_query(i, "snapshot", part, t))
        return out

    def tuples_in(self, key_range: KeyRange,
                  interval: Interval) -> List[TemporalTuple]:
        """Every logical tuple whose key and lifespan hit the rectangle."""
        out: List[TemporalTuple] = []
        for i, part in self.parts_for(key_range):
            out.extend(self._shard_query(i, "tuples_in", part, interval))
        return out

    def history(self, key: int) -> List[TemporalTuple]:
        """All versions a key ever had (routes to the owning shard)."""
        return self._shard_query(self.shard_index(key), "history", key)

    # -- planner -----------------------------------------------------------------------

    def explain(self, key_range: KeyRange, interval: Interval,
                aggregate: Aggregate = SUM) -> List[ShardPlan]:
        """Each intersecting shard's planner decision for the rectangle."""
        return [
            ShardPlan(shard=i, key_range=part,
                      plan=self._shard_query(i, "explain", part, interval,
                                             aggregate))
            for i, part in self.parts_for(key_range)
        ]

    # -- read-path caching -------------------------------------------------------------

    def cache_snapshot(self) -> CacheSnapshot:
        """Cache counters merged across all shards (one row per layer)."""
        snapshot = CacheSnapshot()
        for index in range(self.shard_count):
            snapshot.merge(self._shard_query(index, "cache_snapshot"))
        return snapshot

    # -- maintenance -------------------------------------------------------------------

    def page_count(self) -> int:
        """Total pages across all shards."""
        return sum(self._shard_query(index, "page_count")
                   for index in range(self.shard_count))

    def check_invariants(self) -> None:
        """Audit every shard."""
        for index in range(self.shard_count):
            self._shard_query(index, "check_invariants")

    def checkpoint(self) -> None:
        """Checkpoint every shard (under its exclusive access)."""
        for index in range(self.shard_count):
            self._shard_write(index, "checkpoint")


class ShardedWarehouse(ShardRouter):
    """N key-range-partitioned warehouses answering as one, in-process.

    Parameters
    ----------
    shards:
        Number of partitions (boundaries split the key space evenly).
    key_space:
        Half-open key domain, divided among the shards.
    thread_safe:
        Install per-shard readers-writer locks and buffer-pool locking;
        required whenever more than one thread touches the instance.
    mvcc:
        Serve reads through the epoch-validated optimistic path (see
        :mod:`repro.serve.mvcc`): queries traverse with **no lock held**
        and validate the shard's seqlock epoch at exit, retrying
        (bounded) and falling back to the read lock only on conflict.
        Requires ``thread_safe``; ignored without it.
    page_capacity / buffer_pages / strong_factor / start_time / buffer_policy:
        Forwarded to every underlying :class:`TemporalWarehouse`.
    """

    def __init__(self, shards: int = 4,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 page_capacity: int = 32, buffer_pages: int = 64,
                 strong_factor: float = 0.9, start_time: int = 1,
                 thread_safe: bool = False,
                 buffer_policy: str = "lru",
                 mvcc: bool = False) -> None:
        self.key_space = key_space
        self.boundaries = self._split(key_space, shards)
        self.shards: List[TemporalWarehouse] = [
            TemporalWarehouse(key_space=(lo, hi),
                              page_capacity=page_capacity,
                              buffer_pages=buffer_pages,
                              strong_factor=strong_factor,
                              start_time=start_time,
                              buffer_policy=buffer_policy)
            for lo, hi in zip(self.boundaries, self.boundaries[1:])
        ]
        self._durable_dir: Optional[str] = None
        self._finish_init(thread_safe, mvcc)

    def _finish_init(self, thread_safe: bool, mvcc: bool = False) -> None:
        self.aggregates = _ShardedAggregates(self)
        self.thread_safe = thread_safe
        self.mvcc = bool(mvcc and thread_safe)
        self.locks: List[ReadWriteLock] = [
            ReadWriteLock() for _ in self.shards
        ]
        self.epochs: List[ShardEpoch] = [
            ShardEpoch() for _ in self.shards
        ]
        self.mvcc_stats = MVCCStats()
        self.read_retries = DEFAULT_READ_RETRIES
        if thread_safe:
            for shard in self.shards:
                shard.tuples.pool.enable_locking()
                shard.aggregates.pool.enable_locking()

    # -- backend hooks -----------------------------------------------------------------

    def _shard_query(self, index: int, method: str, *args: Any) -> Any:
        fn = getattr(self.shards[index], method)
        if self.mvcc:
            def run():
                return self._optimistic_query(index, fn, args)
        elif self.thread_safe:
            def run():
                with self.locks[index].read_locked():
                    return fn(*args)
        else:
            def run():
                return fn(*args)
        ctx = current_context()
        if ctx is None:
            return run()
        return self._shard_telemetered(ctx, index, method, run)

    def _shard_write(self, index: int, method: str, *args: Any) -> Any:
        fn = getattr(self.shards[index], method)
        if self.thread_safe:
            def run():
                with self.locks[index].write_locked():
                    if not self.mvcc:
                        return fn(*args)
                    # Seqlock bracket: odd while the trees mutate, even
                    # once the write (or batch) is fully applied.
                    epoch = self.epochs[index]
                    epoch.begin_write()
                    try:
                        return fn(*args)
                    finally:
                        epoch.end_write()
        else:
            def run():
                return fn(*args)
        ctx = current_context()
        if ctx is None:
            return run()
        return self._shard_telemetered(ctx, index, method, run)

    def _shard_query_batch(self, index: int, requests: List[Tuple]
                           ) -> List[Any]:
        """One shard's sub-batch through the warehouse batch kernel."""
        shard = self.shards[index]
        if self.mvcc:
            def run():
                return self._optimistic_query_batch(index, requests)
        elif self.thread_safe:
            def run():
                with self.locks[index].read_locked():
                    return shard.aggregate_batch(requests)
        else:
            def run():
                return shard.aggregate_batch(requests)
        ctx = current_context()
        if ctx is None:
            return run()
        return self._shard_telemetered(ctx, index, "aggregate_batch", run)

    def _optimistic_query_batch(self, index: int,
                                requests: List[Tuple]) -> List[Any]:
        """One seqlock hop for a whole batch, per-query fallback isolation.

        The shard epoch is captured once, the entire batch sweep runs
        with no lock held, and a single validation covers every answer —
        N queries, one epoch check.  A torn read does *not* retry the
        batch wholesale: each query re-runs through its own
        :meth:`_optimistic_query` (own retry budget, own read-lock
        fallback), so one conflicting writer costs re-execution, never a
        batch-wide retry storm.  Cache stores made during the sweep are
        parked in the calling thread's deferred section and committed
        only after the batch validates, exactly as the serial path does.
        """
        from repro.core.cache import (begin_deferred_stores,
                                      commit_deferred_stores,
                                      discard_deferred_stores)

        shard = self.shards[index]
        epoch = self.epochs[index]
        bstats = shard.batch_stats
        started = epoch.read_begin()
        if started % 2 == 0:
            begin_deferred_stores()
            try:
                results = shard.aggregate_batch(requests)
            except Exception:
                discard_deferred_stores()
                if bstats is not None:
                    bstats.note_epoch_validation()
                if epoch.read_validate(started):
                    raise  # deterministic failure, not a torn read
            else:
                if bstats is not None:
                    bstats.note_epoch_validation()
                if epoch.read_validate(started):
                    commit_deferred_stores()
                    self.mvcc_stats.note_optimistic()
                    return results
                discard_deferred_stores()
        # Torn (or a write was mid-bracket at capture): isolate the
        # fallback per query so one conflict cannot fail its batchmates.
        if bstats is not None:
            bstats.note_epoch_fallback(len(requests))
        out: List[Any] = []
        for key_range, interval, aggregate in requests:
            try:
                if aggregate is None:
                    out.append(self._optimistic_query(
                        index, shard.aggregate_all, (key_range, interval)))
                else:
                    out.append(self._optimistic_query(
                        index, shard.aggregate,
                        (key_range, interval, aggregate)))
            except Exception as exc:
                out.append(exc)
        return out

    def _optimistic_query(self, index: int, fn, args) -> Any:
        """One read with **no lock held**, validated by the shard epoch.

        Capture the seqlock word, traverse, validate: unchanged-and-even
        means the traversal saw one consistent version and its answer is
        exactly what the read lock would have produced.  Conflicts retry
        (bounded) and finally fall back to the read lock, so a write
        storm cannot starve a reader forever.  Three subtleties:

        * cache stores made during the traversal are parked thread-
          locally and committed only after validation — a torn read must
          never publish into a shared cache (closed entries are pinned
          forever);
        * an exception with the epoch *unchanged* is deterministic (a
          genuine :class:`~repro.errors.QueryError`, say) and re-raised
          immediately — only epoch-changed exceptions count as
          conflicts;
        * retries yield the GIL briefly so the in-flight writer can
          finish its bracket.
        """
        from repro.core.cache import (begin_deferred_stores,
                                      commit_deferred_stores,
                                      discard_deferred_stores)

        epoch = self.epochs[index]
        stats = self.mvcc_stats
        retries = 0
        try:
            for attempt in range(self.read_retries + 1):
                if attempt:
                    retries += 1
                    stats.note_retry()
                    time.sleep(0 if attempt < 3 else 0.0002)
                started = epoch.read_begin()
                if started % 2:
                    continue  # a write is mid-bracket right now
                begin_deferred_stores()
                try:
                    result = fn(*args)
                except Exception:
                    discard_deferred_stores()
                    if epoch.read_validate(started):
                        raise  # deterministic failure, not a torn read
                    continue
                if epoch.read_validate(started):
                    commit_deferred_stores()
                    stats.note_optimistic()
                    return result
                discard_deferred_stores()
            # Retry budget exhausted: take the read lock (blocks behind
            # the writer, guarantees progress).
            stats.note_fallback()
            ctx = current_context()
            if ctx is not None:
                ctx.mvcc_fallbacks += 1
            with self.locks[index].read_locked():
                return fn(*args)
        finally:
            if retries:
                ctx = current_context()
                if ctx is not None:
                    ctx.mvcc_retries += retries

    def _shard_telemetered(self, ctx, index: int, method: str, run) -> Any:
        """One shard call (``run`` already wraps locking or the
        optimistic path) under an active request context.

        Always attributes wall time to the shard; when the request is
        sampled, additionally appends a ``shard.<method>`` span record.
        A tracer is *not* attached here — the shard warehouses are shared
        across reader threads and a tracer's span stack would race — so
        thread-backend traces carry per-shard-call timing, not page-level
        children (the process backend's single-threaded workers do carry
        them).
        """
        from repro.serve.telemetry import shard_record

        started = time.perf_counter()
        cpu_started = time.process_time()
        try:
            return run()
        finally:
            ctx.note_shard(index, time.perf_counter() - started)
            if ctx.sampled:
                ctx.add_record(shard_record(
                    f"shard.{method}", index,
                    time.process_time() - cpu_started, ctx,
                    backend="thread"))

    @property
    def now(self) -> int:
        """The most recent time any shard has seen."""
        return max(shard.now for shard in self.shards)

    # -- observability -----------------------------------------------------------------

    def explain_trace(self, key_range: KeyRange, interval: Interval,
                      aggregate: Aggregate = SUM) -> List[Dict[str, Any]]:
        """Per-shard EXPLAIN with span trees, thread-backend edition.

        Same row shape as
        :meth:`repro.serve.procpool.ProcessShardedWarehouse.explain_trace`
        (``shard``, ``key_range``, ``plan``, ``result``, ``record``,
        ``cache``), so the slow-query log works identically under both
        executors.  Tracing must attach to the shard's pools, which is
        only safe with no concurrent readers — each shard is therefore
        traced under its *write* lock, making this a diagnostics path,
        not a hot one.
        """
        from repro.obs.explain import explain_query
        from repro.obs.tracefile import span_to_record

        rows: List[Dict[str, Any]] = []
        for index, part in self.parts_for(key_range):
            shard = self.shards[index]

            def run(shard=shard, part=part):
                report = explain_query(shard, part, interval, aggregate)
                return {"plan": report.plan, "result": report.result,
                        "record": span_to_record(report.root),
                        "cache": report.cache}
            if self.thread_safe:
                with self.locks[index].write_locked():
                    payload = run()
            else:
                payload = run()
            rows.append(dict(payload, shard=index, key_range=part))
        return rows

    # -- read-path caching -------------------------------------------------------------

    def enable_cache(self, config: Optional[CacheConfig] = None) -> None:
        """Attach the layered read-path cache on every shard.

        Per-shard caches keep epoch bookkeeping local to the single writer
        of each shard; a write to one shard never invalidates another
        shard's cached aggregates.  Cache bookkeeping is thread-safe iff
        this sharded warehouse is.
        """
        for shard in self.shards:
            shard.enable_cache(config, thread_safe=self.thread_safe)

    def disable_cache(self) -> None:
        """Detach every shard's read-path cache."""
        for shard in self.shards:
            shard.disable_cache()

    # -- durability --------------------------------------------------------------------

    @classmethod
    def open_durable(cls, directory: str, shards: int = 4,
                     key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                     page_capacity: int = 32, buffer_pages: int = 64,
                     strong_factor: float = 0.9, start_time: int = 1,
                     thread_safe: bool = False,
                     fsync: bool = False,
                     buffer_policy: str = "lru",
                     mvcc: bool = False) -> "ShardedWarehouse":
        """Open (or create) a crash-recoverable sharded warehouse.

        The shard layout (count and boundaries) is frozen in
        ``layout.json`` on first open; reopens ignore the ``shards`` and
        ``key_space`` arguments in favor of the stored layout, because
        re-partitioning on-disk shards is not supported.
        ``buffer_policy`` applies to freshly created shards; shards
        restored from a checkpoint keep the default eviction policy.
        """
        key_space, boundaries = load_or_freeze_layout(directory, shards,
                                                      key_space)

        import os

        warehouse = cls.__new__(cls)
        warehouse.key_space = key_space
        warehouse.boundaries = boundaries
        warehouse.shards = [
            TemporalWarehouse.open_durable(
                os.path.join(directory, shard_dir_name(i)),
                buffer_pages=buffer_pages, fsync=fsync,
                key_space=(lo, hi), page_capacity=page_capacity,
                strong_factor=strong_factor, start_time=start_time,
                buffer_policy=buffer_policy)
            for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:]))
        ]
        warehouse._durable_dir = directory
        warehouse._finish_init(thread_safe, mvcc)
        return warehouse

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return all(shard.closed for shard in self.shards)

    def close(self) -> None:
        """Close every shard (idempotent)."""
        for shard in self.shards:
            shard.close()


def shard_dir_name(index: int) -> str:
    """On-disk directory name of shard ``index`` (shared by backends)."""
    return f"shard-{index:02d}"


def load_or_freeze_layout(directory: str, shards: int,
                          key_space: Tuple[int, int]
                          ) -> Tuple[Tuple[int, int], List[int]]:
    """Read ``layout.json`` (or write it on first open) and return the
    frozen ``(key_space, boundaries)``.

    Both durable backends go through this, so a directory created by one
    executor reopens identically under the other.
    """
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    layout_path = os.path.join(directory, _LAYOUT_FILE)
    if os.path.exists(layout_path):
        with open(layout_path) as fh:
            layout = json.load(fh)
        return tuple(layout["key_space"]), list(layout["boundaries"])
    boundaries = ShardRouter._split(key_space, shards)
    with open(layout_path, "w") as fh:
        json.dump({"key_space": list(key_space),
                   "boundaries": boundaries}, fh)
    return key_space, boundaries
