"""Workload generation: synthetic warehouses and query rectangles.

The paper's datasets come from the TimeIT generator ([IKS98]) with keys
added afterwards: 1M records over 10,000 unique keys, key space
``[1, 10^9]``, time space ``[1, 10^8]``, uniformly or normally distributed
keys, mainly long- or mainly short-lived intervals.  This package rebuilds
those knobs as seeded generators:

* :func:`~repro.workloads.generator.generate_dataset` — a transaction-time
  update stream (insert/delete events in time order, 1TNF per key);
* :func:`~repro.workloads.queries.generate_query_rectangles` — random query
  rectangles parameterized by QRS (area fraction) and R/I shape (section 5);
* :mod:`~repro.workloads.datasets` — the paper's four dataset families at a
  configurable scale.
"""

from repro.workloads.generator import (
    DatasetConfig,
    UpdateEvent,
    WorkloadDataset,
    generate_dataset,
)
from repro.workloads.queries import QueryRectangleConfig, generate_query_rectangles
from repro.workloads.datasets import paper_config, PAPER_FAMILIES

__all__ = [
    "DatasetConfig",
    "PAPER_FAMILIES",
    "QueryRectangleConfig",
    "UpdateEvent",
    "WorkloadDataset",
    "generate_dataset",
    "generate_query_rectangles",
    "paper_config",
]
