"""The paper's four dataset families (section 5) at a configurable scale.

The paper generates 1M-record datasets with 10,000 unique keys over key
space ``[1, 10^9]`` and time space ``[1, 10^8]``, crossing two key
distributions (uniform, normal) with two interval-length regimes (mainly
long-lived, mainly short-lived).  ``paper_config(family, scale)`` returns
the corresponding :class:`~repro.workloads.generator.DatasetConfig`;
``scale=1.0`` is the paper's size, the default ``scale=0.01`` keeps the
record-per-key density (100) while shrinking the record count to what
CPython sweeps in seconds.
"""

from __future__ import annotations

from repro.workloads.generator import DatasetConfig

PAPER_RECORDS = 1_000_000
PAPER_KEYS = 10_000
PAPER_KEY_SPACE = (1, 10**9 + 1)
PAPER_TIME_SPACE = (1, 10**8 + 1)

PAPER_FAMILIES = (
    "uniform-long",
    "uniform-short",
    "normal-long",
    "normal-short",
)


def paper_config(family: str = "uniform-long", scale: float = 0.01,
                 seed: int = 20010521) -> DatasetConfig:
    """A section 5 dataset family scaled by ``scale``.

    ``family`` is ``"<distribution>-<interval style>"`` from
    :data:`PAPER_FAMILIES`.  Scaling multiplies both the record count and
    the unique-key count, preserving the paper's ~100 records per key.
    """
    if family not in PAPER_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; choose from {PAPER_FAMILIES}"
        )
    if not (0.0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    distribution, style = family.split("-")
    n_records = max(100, int(PAPER_RECORDS * scale))
    n_keys = max(10, int(PAPER_KEYS * scale))
    return DatasetConfig(
        n_records=n_records,
        n_keys=n_keys,
        key_space=PAPER_KEY_SPACE,
        time_space=PAPER_TIME_SPACE,
        key_distribution=distribution,  # type: ignore[arg-type]
        interval_style=style,           # type: ignore[arg-type]
        seed=seed,
    )
