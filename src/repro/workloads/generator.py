"""Synthetic temporal warehouse generation (TimeIT-like, seeded).

A dataset is a set of temporal tuples respecting first temporal normal form
— per key, the records' intervals are pairwise disjoint — delivered as a
transaction-time update stream: ``insert`` and ``delete`` events sorted by
timestamp, deletes before inserts within one instant so a key can die and be
reborn at the same tick.

Interval lengths are drawn from an exponential distribution whose mean is a
fraction of the time space: the paper's "mainly long-lived" and "mainly
short-lived" datasets differ exactly in that fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Literal, Tuple

import numpy as np

from repro.core.model import NOW


@dataclass(frozen=True)
class UpdateEvent:
    """One warehouse update: ``op`` is ``"insert"`` or ``"delete"``."""

    op: str
    key: int
    value: float
    time: int


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the TimeIT-like generator.

    Defaults are the paper's section 5 parameters scaled down 100x
    (records and unique keys); key and time spaces keep the paper's extents
    since index behaviour depends on densities, not absolute coordinates.
    """

    n_records: int = 10_000
    n_keys: int = 100
    key_space: Tuple[int, int] = (1, 10**9 + 1)
    time_space: Tuple[int, int] = (1, 10**8 + 1)
    key_distribution: Literal["uniform", "normal", "zipf"] = "uniform"
    interval_style: Literal["long", "short"] = "long"
    #: Mean interval length as a fraction of the time space.
    long_fraction: float = 0.02
    short_fraction: float = 0.0002
    value_range: Tuple[int, int] = (1, 100)
    seed: int = 20010521  # PODS 2001

    def __post_init__(self) -> None:
        if self.n_keys < 1 or self.n_records < self.n_keys:
            raise ValueError(
                f"need n_records >= n_keys >= 1, got "
                f"{self.n_records}/{self.n_keys}"
            )
        if self.key_distribution not in ("uniform", "normal", "zipf"):
            raise ValueError(f"unknown key distribution "
                             f"{self.key_distribution!r}")
        if self.interval_style not in ("long", "short"):
            raise ValueError(f"unknown interval style "
                             f"{self.interval_style!r}")

    @property
    def mean_interval(self) -> float:
        span = self.time_space[1] - self.time_space[0]
        fraction = (self.long_fraction if self.interval_style == "long"
                    else self.short_fraction)
        return max(2.0, span * fraction)


@dataclass
class WorkloadDataset:
    """The generated warehouse: tuples plus the derived update stream."""

    config: DatasetConfig
    #: (key, start, end, value); ``end == NOW`` for still-alive tuples.
    tuples: List[Tuple[int, int, int, float]] = field(default_factory=list)
    events: List[UpdateEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tuples)

    @property
    def unique_keys(self) -> int:
        return len({key for (key, _s, _e, _v) in self.tuples})

    def replay_into(self, index) -> None:
        """Feed the event stream into anything with insert/delete methods."""
        for event in self.events:
            if event.op == "insert":
                index.insert(event.key, event.value, event.time)
            else:
                index.delete(event.key, event.time)

    def iter_batches(self, size: int) -> Iterator[List[UpdateEvent]]:
        """Yield the event stream in chunks of at most ``size``."""
        for i in range(0, len(self.events), size):
            yield self.events[i:i + size]


def _draw_keys(config: DatasetConfig, rng: np.random.Generator) -> np.ndarray:
    lo, hi = config.key_space
    span = hi - lo
    wanted = config.n_keys
    chosen: set[int] = set()
    while len(chosen) < wanted:
        need = wanted - len(chosen)
        if config.key_distribution == "uniform":
            draws = rng.integers(lo, hi, size=max(need * 2, 8))
        elif config.key_distribution == "normal":
            center = lo + span / 2
            draws = rng.normal(center, span / 8, size=max(need * 2, 8))
            draws = np.clip(draws.astype(np.int64), lo, hi - 1)
        else:
            # Zipf (a=1.5) offsets from the bottom of the key space:
            # heavy skew toward low keys, the classic hot-range stressor
            # (not in the paper's section 5, kept for skew experiments).
            draws = rng.zipf(1.5, size=max(need * 2, 8))
            draws = lo + np.minimum(draws - 1, span - 1)
        chosen.update(int(k) for k in draws)
    ordered = sorted(chosen)
    if len(ordered) > wanted:
        # Drop the surplus at random — truncating the sorted list would
        # bias the distribution toward low keys.
        picked = rng.choice(len(ordered), size=wanted, replace=False)
        ordered = sorted(ordered[i] for i in picked)
    return np.array(ordered, dtype=np.int64)


def _distinct_sorted_times(rng: np.random.Generator, lo: int, hi: int,
                           count: int) -> np.ndarray:
    """``count`` distinct sorted integers in ``[lo, hi)`` without
    materializing the range (the paper's time space has 10^8 instants)."""
    chosen: set[int] = set()
    while len(chosen) < count:
        need = count - len(chosen)
        chosen.update(
            int(t) for t in rng.integers(lo, hi, size=max(need * 2, 8))
        )
    ordered = sorted(chosen)
    if len(ordered) > count:
        picked = rng.choice(len(ordered), size=count, replace=False)
        ordered = sorted(ordered[i] for i in picked)
    return np.array(ordered, dtype=np.int64)


def generate_dataset(config: DatasetConfig) -> WorkloadDataset:
    """Generate a 1TNF warehouse and its transaction-time update stream.

    Deterministic for a fixed config (numpy ``default_rng`` seeded from
    ``config.seed``).
    """
    rng = np.random.default_rng(config.seed)
    keys = _draw_keys(config, rng)
    t_lo, t_hi = config.time_space

    # Distribute the record budget over keys: average n_records/n_keys
    # records each, +-50% spread, then fix the total by adjustment.
    per_key = np.maximum(
        1, rng.integers(
            max(1, config.n_records // config.n_keys // 2),
            max(2, (config.n_records // config.n_keys) * 3 // 2 + 1),
            size=config.n_keys,
        )
    )
    deficit = config.n_records - int(per_key.sum())
    step = 1 if deficit > 0 else -1
    idx = 0
    while deficit != 0:
        if step > 0 or per_key[idx % config.n_keys] > 1:
            per_key[idx % config.n_keys] += step
            deficit -= step
        idx += 1

    tuples: List[Tuple[int, int, int, float]] = []
    for key, count in zip(keys, per_key):
        count = min(int(count), (t_hi - 1 - t_lo) // 2)
        starts = _distinct_sorted_times(rng, t_lo, t_hi - 1, count)
        lengths = np.maximum(
            1, rng.exponential(config.mean_interval, size=len(starts))
        ).astype(np.int64)
        values = rng.integers(config.value_range[0],
                              config.value_range[1] + 1, size=len(starts))
        for i, (start, length, value) in enumerate(
                zip(starts, lengths, values)):
            # Consecutive records never overlap (1TNF): each end is
            # clipped at the next record's start.
            limit = int(starts[i + 1]) if i + 1 < len(starts) else t_hi
            end = min(int(start) + int(length), limit)
            tuples.append((int(key), int(start), end, float(value)))

    events: List[UpdateEvent] = []
    for key, start, end, value in tuples:
        events.append(UpdateEvent("insert", key, value, start))
        if end < t_hi:
            events.append(UpdateEvent("delete", key, value, end))
    # Deletes first within an instant, so a key freed at t can be reused at t.
    events.sort(key=lambda e: (e.time, 0 if e.op == "delete" else 1, e.key))

    # Tuples still alive at the horizon keep their real end for reference
    # purposes but are never deleted in the stream.
    normalized = [
        (key, start, end if end < t_hi else NOW, value)
        for (key, start, end, value) in tuples
    ]
    return WorkloadDataset(config=config, tuples=normalized, events=events)
