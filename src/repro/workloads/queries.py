"""Query-rectangle generation (paper section 5).

The paper describes a query workload by two numbers:

* **QRS** (query rectangle size) — the rectangle's area as a fraction of
  the whole key-time space;
* **R/I shape** — ``R`` is the key-range extent divided by the key-space
  extent, ``I`` the time-interval extent divided by the time-space extent.

Given ``QRS = R * I`` and ``shape = R / I``, the relative extents are
``R = sqrt(QRS * shape)`` and ``I = sqrt(QRS / shape)`` (clamped to 1);
positions are uniform over the legal placements.  Each experiment point in
Figure 4b/4c uses 100 rectangles of one fixed size and shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.model import Interval, KeyRange, Rectangle
from repro.errors import QueryError


@dataclass(frozen=True)
class QueryRectangleConfig:
    """One query-workload point: ``count`` rectangles of fixed size/shape."""

    qrs: float = 0.01            # area fraction of the key-time space
    shape: float = 1.0           # R / I
    count: int = 100
    key_space: Tuple[int, int] = (1, 10**9 + 1)
    time_space: Tuple[int, int] = (1, 10**8 + 1)
    seed: int = 4001

    def __post_init__(self) -> None:
        if not (0.0 < self.qrs <= 1.0):
            raise QueryError(f"QRS must be in (0, 1], got {self.qrs}")
        if self.shape <= 0:
            raise QueryError(f"shape must be positive, got {self.shape}")
        if self.count < 1:
            raise QueryError("need at least one rectangle")

    @property
    def relative_extents(self) -> Tuple[float, float]:
        """(R, I): relative key and time extents, individually clamped to 1.

        When the requested shape would push one extent past the full space
        the other absorbs the area so the QRS is preserved whenever
        possible (QRS <= 1 always makes that feasible).
        """
        r = math.sqrt(self.qrs * self.shape)
        i = math.sqrt(self.qrs / self.shape)
        if r > 1.0:
            r, i = 1.0, self.qrs
        elif i > 1.0:
            r, i = self.qrs, 1.0
        return r, i


def generate_query_rectangles(config: QueryRectangleConfig) -> List[Rectangle]:
    """``config.count`` uniformly placed rectangles of one size and shape."""
    rng = np.random.default_rng(config.seed)
    k_lo, k_hi = config.key_space
    t_lo, t_hi = config.time_space
    r, i = config.relative_extents
    key_extent = max(1, round((k_hi - k_lo) * r))
    time_extent = max(1, round((t_hi - t_lo) * i))

    rectangles: List[Rectangle] = []
    for _ in range(config.count):
        key_start = int(rng.integers(k_lo, max(k_lo + 1, k_hi - key_extent)))
        time_start = int(rng.integers(t_lo, max(t_lo + 1, t_hi - time_extent)))
        rectangles.append(Rectangle(
            KeyRange(key_start, key_start + key_extent),
            Interval(time_start, time_start + time_extent),
        ))
    return rectangles
