"""ANALYZE for the temporal indexes: structural statistics and reports.

``describe(index)`` walks any index of this library and returns a plain
nested dict — page counts by level, record liveness, fill factors, version
counts, operation counters — the numbers one reads before tuning ``b``,
``f`` or the buffer size.  ``render_report`` pretty-prints it.

Supported: :class:`~repro.mvsbt.tree.MVSBT`, :class:`~repro.mvbt.tree.MVBT`,
:class:`~repro.sbtree.tree.SBTree` (and subclasses),
:class:`~repro.core.rta.RTAIndex`,
:class:`~repro.core.warehouse.TemporalWarehouse`.

The module is also a small CLI over trace files, benchmark reports, and
live servers::

    python -m repro.analyze traces out.jsonl --top 10   # hottest spans
    python -m repro.analyze schema                       # print the schema
    python -m repro.analyze schema --check docs/trace_schema.json
    python -m repro.analyze bench                        # perf trajectory
    python -m repro.analyze slowlog --port 7654          # slow-query ring

``traces`` ranks the spans of a ``--trace`` JSONL file (bench phases or
EXPLAIN span trees alike) by physical I/O and by CPU; ``schema --check``
fails when a checked-in schema copy drifts from the one the code
enforces; ``bench`` reads every ``BENCH_*.json`` under
``benchmarks/results`` (legacy shapes are upgraded in memory — see
:mod:`repro.bench.envelope`), prints the headline metrics of each
benchmark family in the order the PRs introduced them, and — when any
run carries SLO metrics (loadgen ``--slo-ms``) — ranks those runs by
error-budget burn; ``slowlog`` pulls a live server's slow-query ring
(the ``slowlog`` protocol op) and tabulates the entries, newest first.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import Any, Dict, Iterable, List, Optional

from repro.core.rta import RTAIndex
from repro.core.warehouse import TemporalWarehouse
from repro.mvbt.tree import MVBT
from repro.mvsbt.tree import MVSBT
from repro.sbtree.tree import SBTree
from repro.sbtree.node import is_leaf as sbtree_is_leaf


def describe(index: Any) -> Dict[str, Any]:
    """Structural statistics for any index in the library."""
    if isinstance(index, MVSBT):
        return _describe_mvsbt(index)
    if isinstance(index, MVBT):
        return _describe_mvbt(index)
    if isinstance(index, SBTree):
        return _describe_sbtree(index)
    if isinstance(index, RTAIndex):
        return _describe_rta(index)
    if isinstance(index, TemporalWarehouse):
        return {
            "type": "temporal-warehouse",
            "tuples": _describe_mvbt(index.tuples),
            "aggregates": _describe_rta(index.aggregates),
        }
    raise TypeError(f"describe() does not support {type(index).__name__}")


def _page_walk(index) -> Dict[str, Any]:
    """Shared per-page accounting for the multiversion structures."""
    pages = 0
    records = 0
    alive = 0
    by_level: Dict[int, int] = {}
    fill_total = 0.0
    for page_id in index.page_ids():
        page = index.pool.fetch(page_id)
        pages += 1
        # Columnar pages (buffered MVSBT ingest) are described without
        # being converted back to object records.
        recs = page.records if page.records is not None \
            else page.cache.to_records()
        records += len(recs)
        alive += sum(1 for rec in recs if rec.alive)
        level = page.meta.get("level", 0)
        by_level[level] = by_level.get(level, 0) + 1
        fill_total += len(recs) / page.capacity
    return {
        "pages": pages,
        "records": records,
        "alive_records": alive,
        "dead_records": records - alive,
        "pages_by_level": dict(sorted(by_level.items())),
        "avg_fill": round(fill_total / pages, 4) if pages else 0.0,
    }


def _describe_mvsbt(tree: MVSBT) -> Dict[str, Any]:
    report = {
        "type": "mvsbt",
        "capacity": tree.config.capacity,
        "strong_factor": tree.config.strong_factor,
        "height": tree.height(),
        "roots": len(tree.roots),
        "now": tree.now,
        "counters": asdict(tree.counters),
    }
    report.update(_page_walk(tree))
    return report


def _describe_mvbt(tree: MVBT) -> Dict[str, Any]:
    report = {
        "type": "mvbt",
        "capacity": tree.config.capacity,
        "weak_min": tree.config.weak_min,
        "roots": len(tree.roots),
        "now": tree.now,
        "counters": asdict(tree.counters),
    }
    report.update(_page_walk(tree))
    return report


def _describe_sbtree(tree: SBTree) -> Dict[str, Any]:
    pages = 0
    records = 0
    leaf_records = 0
    fill_total = 0.0
    for page_id in tree._all_page_ids():
        page = tree.pool.fetch(page_id)
        pages += 1
        records += len(page.records)
        if sbtree_is_leaf(page):
            leaf_records += len(page.records)
        fill_total += len(page.records) / page.capacity
    return {
        "type": "sbtree",
        "capacity": tree.capacity,
        "height": tree.height,
        "insertions": tree.insertions,
        "pages": pages,
        "records": records,
        "leaf_records": leaf_records,
        "avg_fill": round(fill_total / pages, 4) if pages else 0.0,
    }


def _describe_rta(index: RTAIndex) -> Dict[str, Any]:
    report: Dict[str, Any] = {
        "type": "rta-index",
        "aggregates": [a.name for a in index.aggregates],
        "alive_tuples": index.alive_count() if index.track_values else None,
        "trees": {},
    }
    total_pages = 0
    for name, (lkst, lklt) in index.trees().items():
        lkst_report = _describe_mvsbt(lkst)
        lklt_report = _describe_mvsbt(lklt)
        report["trees"][name] = {"lkst": lkst_report, "lklt": lklt_report}
        total_pages += lkst_report["pages"] + lklt_report["pages"]
    report["pages"] = total_pages
    return report


def render_report(report: Dict[str, Any], indent: int = 0) -> str:
    """Readable text rendering of a :func:`describe` report."""
    lines = []
    pad = "  " * indent
    for key, value in report.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render_report(value, indent + 1))
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)


# -- trace-file CLI ----------------------------------------------------------------


def _attr_summary(record: Dict[str, Any], width: int = 48) -> str:
    """Compact ``k=v`` rendering of a record's attrs for a table cell."""
    attrs = record.get("attrs") or {}
    text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    if len(text) > width:
        text = text[:width - 1] + "…"
    return text


def top_spans_table(records: Iterable[Dict[str, Any]], by: str,
                    top: int = 10) -> "Table":
    """Rank every span (children included) by ``"ios"`` or ``"cpu"``.

    Returns a :class:`~repro.bench.reporting.Table` of the ``top`` most
    expensive spans: physical I/O split into reads/writes, logical hits,
    and CPU milliseconds, with the span's attrs as the last column.
    """
    from repro.bench.reporting import Table
    from repro.obs.tracefile import iter_records

    if by not in ("ios", "cpu"):
        raise ValueError(f"rank spans by 'ios' or 'cpu', not {by!r}")
    flat = list(iter_records(records))

    def cost(record: Dict[str, Any]) -> float:
        if by == "ios":
            return record["reads"] + record["writes"]
        return record["cpu_s"]

    flat.sort(key=cost, reverse=True)
    table = Table(
        title=f"top {top} spans by {'physical I/O' if by == 'ios' else 'CPU'}",
        columns=("span", "ios", "reads", "writes", "logical", "cpu_ms",
                 "attrs"),
    )
    for record in flat[:top]:
        table.add(span=record["name"],
                  ios=record["reads"] + record["writes"],
                  reads=record["reads"], writes=record["writes"],
                  logical=record["logical_reads"],
                  cpu_ms=record["cpu_s"] * 1000.0,
                  attrs=_attr_summary(record))
    return table


def _cmd_traces(path: str, top: int) -> int:
    """The ``traces`` subcommand: print both top-k rankings for a file."""
    from repro.obs.tracefile import read_trace

    records = read_trace(path)
    print(f"{path}: {len(records)} top-level records")
    print()
    print(top_spans_table(records, by="ios", top=top).render())
    print(top_spans_table(records, by="cpu", top=top).render())
    return 0


def _cmd_schema(check: Optional[str]) -> int:
    """The ``schema`` subcommand: print, or diff against a checked-in copy."""
    from repro.obs.tracefile import TRACE_RECORD_SCHEMA

    if check is None:
        print(json.dumps(TRACE_RECORD_SCHEMA, indent=2, sort_keys=True))
        return 0
    with open(check) as fh:
        on_disk = json.load(fh)
    if on_disk == TRACE_RECORD_SCHEMA:
        print(f"{check}: matches the enforced trace-record schema")
        return 0
    print(f"{check}: DRIFT — does not match repro.obs.tracefile."
          f"TRACE_RECORD_SCHEMA", file=sys.stderr)
    print("regenerate with: python -m repro.analyze schema > " + check,
          file=sys.stderr)
    return 1


def _clip(text: str, width: int) -> str:
    """Truncate ``text`` to ``width`` with an ellipsis marker."""
    if len(text) > width:
        return text[:width - 1] + "…"
    return text


def _explain_cell(explain: Any) -> str:
    """One-word rendering of a slowlog entry's captured EXPLAIN."""
    if explain is None:
        return "-"
    if isinstance(explain, dict) and "error" in explain:
        code = (explain["error"] or {}).get("code", "?")
        return f"error[{code}]"
    if isinstance(explain, list):
        return f"{len(explain)} shard(s)"
    return "?"


def slowlog_table(entries: Iterable[Dict[str, Any]], total: int) -> "Table":
    """Tabulate ``slowlog`` op entries (newest first)."""
    from repro.bench.reporting import Table

    entries = list(entries)
    table = Table(
        title=f"slow-query log ({len(entries)} shown of {total} total)",
        columns=("request", "op", "status", "ms", "queue_ms", "exec_ms",
                 "trace", "explain", "tql"),
    )
    for entry in entries:
        trace_id = entry.get("trace_id")
        table.add(request=entry.get("request_id", "?"),
                  op=entry.get("op", "?"),
                  status=entry.get("status", "?"),
                  ms=round(entry.get("elapsed_ms", 0.0), 2),
                  queue_ms=round(entry.get("queue_ms", 0.0), 2),
                  exec_ms=round(entry.get("exec_ms", 0.0), 2),
                  trace=(trace_id[:8] if trace_id else "-"),
                  explain=_explain_cell(entry.get("explain")),
                  tql=_clip(entry.get("tql") or "-", 40))
    return table


def _cmd_slowlog(host: str, port: int, limit: Optional[int]) -> int:
    """The ``slowlog`` subcommand: pull and print a live server's ring."""
    from repro.serve.client import Client

    with Client(host, port) as client:
        payload = client.slowlog(limit=limit)
    entries = payload.get("entries", [])
    total = payload.get("total", len(entries))
    if not entries:
        print(f"{host}:{port}: slow-query log is empty "
              f"({total} slow requests ever recorded)")
        return 0
    print(slowlog_table(entries, total).render())
    return 0


def _metric_value(value: Any) -> str:
    """Render one flat metric for the bench table."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:,.2f}"
    return f"{value:,}"


def _cmd_bench(directory: str) -> int:
    """The ``bench`` subcommand: the perf trajectory across PRs."""
    from pathlib import Path

    from repro.bench.envelope import BENCH_PR, load_all
    from repro.bench.reporting import Table

    reports = load_all(Path(directory))
    if not reports:
        print(f"no BENCH_*.json files under {directory}", file=sys.stderr)
        return 1
    table = Table(
        title=f"benchmark trajectory ({directory})",
        columns=("pr", "bench", "file", "metric", "value"),
    )
    for filename, report in reports.items():
        bench = report.get("bench", "unknown")
        pr = BENCH_PR.get(bench)
        metrics = report.get("metrics", {})
        if not metrics:
            table.add(pr=pr if pr is not None else "?", bench=bench,
                      file=filename, metric="(none)", value="")
        for i, (name, value) in enumerate(sorted(metrics.items())):
            table.add(pr=(pr if pr is not None else "?") if i == 0 else "",
                      bench=bench if i == 0 else "",
                      file=filename if i == 0 else "",
                      metric=name, value=_metric_value(value))
    table.note("legacy payloads are upgraded in memory to the v1 "
               "envelope; raw numbers stay in each file's raw section")
    print(table.render())

    slo_rows = [(filename, report) for filename, report in reports.items()
                if "slo_attained" in report.get("metrics", {})]
    if slo_rows:
        print()
        print(_slo_ranking_table(slo_rows).render())
    return 0


def _slo_ranking_table(rows: "List[tuple]") -> "Table":
    """Rank SLO-carrying bench runs: compliant first, least burn first."""
    from repro.bench.reporting import Table

    def rank(item: "tuple") -> "tuple":
        metrics = item[1].get("metrics", {})
        return (not metrics.get("slo_met", False),
                metrics.get("slo_burn", float("inf")))

    table = Table(
        title="SLO compliance ranking",
        columns=("rank", "file", "bench", "attained", "burn", "verdict"),
    )
    for position, (filename, report) in enumerate(sorted(rows, key=rank), 1):
        metrics = report.get("metrics", {})
        attained = metrics.get("slo_attained", 0.0)
        burn = metrics.get("slo_burn", float("inf"))
        table.add(rank=position, file=filename,
                  bench=report.get("bench", "unknown"),
                  attained=f"{attained * 100.0:.2f}%",
                  burn=f"{burn:.2f}x",
                  verdict="MET" if metrics.get("slo_met") else "MISSED")
    table.note("burn = (1 - attained) / (1 - target): the consumed share "
               "of the error budget; above 1.0x the SLO is blown")
    return table


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.analyze``); returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Inspect trace files emitted by the observability layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    traces = sub.add_parser("traces",
                            help="rank spans of a JSONL trace by I/O and CPU")
    traces.add_argument("file", help="a --trace JSONL file")
    traces.add_argument("--top", type=int, default=10,
                        help="rows per ranking (default 10)")
    schema = sub.add_parser("schema",
                            help="print or check the trace-record schema")
    schema.add_argument("--check", default=None, metavar="FILE",
                        help="compare FILE against the enforced schema")
    bench = sub.add_parser("bench",
                           help="print the BENCH_*.json perf trajectory")
    bench.add_argument("--dir", default="benchmarks/results",
                       help="directory of BENCH_*.json files "
                            "(default benchmarks/results)")
    slowlog = sub.add_parser("slowlog",
                             help="tabulate a live server's slow-query "
                                  "ring (the slowlog protocol op)")
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=7654)
    slowlog.add_argument("--limit", type=int, default=None,
                         help="cap on entries returned (newest first)")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if args.command == "traces":
        return _cmd_traces(args.file, args.top)
    if args.command == "bench":
        return _cmd_bench(args.dir)
    if args.command == "slowlog":
        return _cmd_slowlog(args.host, args.port, args.limit)
    return _cmd_schema(args.check)


if __name__ == "__main__":
    raise SystemExit(main())
