"""ANALYZE for the temporal indexes: structural statistics and reports.

``describe(index)`` walks any index of this library and returns a plain
nested dict — page counts by level, record liveness, fill factors, version
counts, operation counters — the numbers one reads before tuning ``b``,
``f`` or the buffer size.  ``render_report`` pretty-prints it.

Supported: :class:`~repro.mvsbt.tree.MVSBT`, :class:`~repro.mvbt.tree.MVBT`,
:class:`~repro.sbtree.tree.SBTree` (and subclasses),
:class:`~repro.core.rta.RTAIndex`,
:class:`~repro.core.warehouse.TemporalWarehouse`.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict

from repro.core.rta import RTAIndex
from repro.core.warehouse import TemporalWarehouse
from repro.mvbt.tree import MVBT
from repro.mvsbt.tree import MVSBT
from repro.sbtree.tree import SBTree
from repro.sbtree.node import is_leaf as sbtree_is_leaf


def describe(index: Any) -> Dict[str, Any]:
    """Structural statistics for any index in the library."""
    if isinstance(index, MVSBT):
        return _describe_mvsbt(index)
    if isinstance(index, MVBT):
        return _describe_mvbt(index)
    if isinstance(index, SBTree):
        return _describe_sbtree(index)
    if isinstance(index, RTAIndex):
        return _describe_rta(index)
    if isinstance(index, TemporalWarehouse):
        return {
            "type": "temporal-warehouse",
            "tuples": _describe_mvbt(index.tuples),
            "aggregates": _describe_rta(index.aggregates),
        }
    raise TypeError(f"describe() does not support {type(index).__name__}")


def _page_walk(index) -> Dict[str, Any]:
    """Shared per-page accounting for the multiversion structures."""
    pages = 0
    records = 0
    alive = 0
    by_level: Dict[int, int] = {}
    fill_total = 0.0
    for page_id in index.page_ids():
        page = index.pool.fetch(page_id)
        pages += 1
        records += len(page.records)
        alive += sum(1 for rec in page.records if rec.alive)
        level = page.meta.get("level", 0)
        by_level[level] = by_level.get(level, 0) + 1
        fill_total += len(page.records) / page.capacity
    return {
        "pages": pages,
        "records": records,
        "alive_records": alive,
        "dead_records": records - alive,
        "pages_by_level": dict(sorted(by_level.items())),
        "avg_fill": round(fill_total / pages, 4) if pages else 0.0,
    }


def _describe_mvsbt(tree: MVSBT) -> Dict[str, Any]:
    report = {
        "type": "mvsbt",
        "capacity": tree.config.capacity,
        "strong_factor": tree.config.strong_factor,
        "height": tree.height(),
        "roots": len(tree.roots),
        "now": tree.now,
        "counters": asdict(tree.counters),
    }
    report.update(_page_walk(tree))
    return report


def _describe_mvbt(tree: MVBT) -> Dict[str, Any]:
    report = {
        "type": "mvbt",
        "capacity": tree.config.capacity,
        "weak_min": tree.config.weak_min,
        "roots": len(tree.roots),
        "now": tree.now,
        "counters": asdict(tree.counters),
    }
    report.update(_page_walk(tree))
    return report


def _describe_sbtree(tree: SBTree) -> Dict[str, Any]:
    pages = 0
    records = 0
    leaf_records = 0
    fill_total = 0.0
    for page_id in tree._all_page_ids():
        page = tree.pool.fetch(page_id)
        pages += 1
        records += len(page.records)
        if sbtree_is_leaf(page):
            leaf_records += len(page.records)
        fill_total += len(page.records) / page.capacity
    return {
        "type": "sbtree",
        "capacity": tree.capacity,
        "height": tree.height,
        "insertions": tree.insertions,
        "pages": pages,
        "records": records,
        "leaf_records": leaf_records,
        "avg_fill": round(fill_total / pages, 4) if pages else 0.0,
    }


def _describe_rta(index: RTAIndex) -> Dict[str, Any]:
    report: Dict[str, Any] = {
        "type": "rta-index",
        "aggregates": [a.name for a in index.aggregates],
        "alive_tuples": index.alive_count() if index.track_values else None,
        "trees": {},
    }
    total_pages = 0
    for name, (lkst, lklt) in index.trees().items():
        lkst_report = _describe_mvsbt(lkst)
        lklt_report = _describe_mvsbt(lklt)
        report["trees"][name] = {"lkst": lkst_report, "lklt": lklt_report}
        total_pages += lkst_report["pages"] + lklt_report["pages"]
    report["pages"] = total_pages
    return report


def render_report(report: Dict[str, Any], indent: int = 0) -> str:
    """Readable text rendering of a :func:`describe` report."""
    lines = []
    pad = "  " * indent
    for key, value in report.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render_report(value, indent + 1))
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
