"""repro — range-temporal aggregation with the Multiversion SB-Tree.

A from-scratch reproduction of *Efficient Computation of Temporal Aggregates
with Range Predicates* (Zhang, Markowetz, Tsotras, Gunopulos, Seeger,
PODS 2001): the MVSBT index, the RTA reduction over two MVSBTs, the SB-tree
and MVBT substrates, the paper's baselines, workload generators, and a
benchmark harness regenerating every figure of the evaluation.

Public entry points
-------------------
:class:`~repro.core.RTAIndex`
    The paper's headline structure: SUM/COUNT/AVG over any key range x time
    interval in logarithmic I/Os.
:class:`~repro.mvsbt.MVSBT`
    The underlying dominance-sum index (insert a value over a quadrant,
    point-query any key/time).
:class:`~repro.sbtree.SBTree`
    Scalar temporal aggregation (the [YW01] substrate).
:class:`~repro.mvbt.MVBT`
    The multiversion B-tree used as the paper's comparison baseline.

Top-level names are re-exported lazily (PEP 562) so that importing one
subpackage never drags in the whole library.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

#: name -> submodule providing it; resolved on first attribute access.
_EXPORTS = {
    "AVG": "repro.core",
    "COUNT": "repro.core",
    "SUM": "repro.core",
    "Interval": "repro.core",
    "KeyRange": "repro.core",
    "Rectangle": "repro.core",
    "TemporalTuple": "repro.core",
    "MAX_KEY": "repro.core",
    "MAX_TIME": "repro.core",
    "NOW": "repro.core",
    "RTAIndex": "repro.core",
    "RTAResult": "repro.core",
    "MVSBT": "repro.mvsbt",
    "SBTree": "repro.sbtree",
    "MVBT": "repro.mvbt",
    "TemporalWarehouse": "repro.core",
    "QueryPlan": "repro.core",
    "RangeMinMaxIndex": "repro.minmax",
    "ShardedWarehouse": "repro.serve",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return __all__
