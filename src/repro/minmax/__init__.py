"""Range-temporal MIN/MAX — the paper's open problem (ii), insert-only case.

The paper's MVSBT machinery needs an invertible aggregate (deletions are
negative insertions), so MIN/MAX over arbitrary key ranges is left open.
:class:`~repro.minmax.index.RangeMinMaxIndex` solves the **insert-only**
case (append-only warehouses, or valid-time tuples whose intervals are
known at insertion): an implicit F-ary segment tree over the key space
whose materialized nodes each hold an insert-only
:class:`~repro.sbtree.minmax.MinMaxSBTree` over the time axis.

* ``insert(key, value, start, end)`` feeds the O(log_F K) node trees on
  the key's root-to-leaf path.
* ``query(range, interval)`` decomposes the key range into O(F log_F K)
  canonical nodes and combines their SB-trees' time-window queries —
  every term is an O(log_b m) page walk, so the whole query is
  polylogarithmic and independent of how many tuples fall in the
  rectangle.

For workloads *with* deletions MIN/MAX must fall back to retrieval over
the tuple store (see :meth:`repro.core.warehouse.TemporalWarehouse.min`),
which remains the general-case state of the art.
"""

from repro.minmax.index import RangeMinMaxIndex

__all__ = ["RangeMinMaxIndex"]
