"""Insert-only range-temporal MIN/MAX over an implicit key segment tree.

Structure.  The key space is padded to ``fanout**depth`` and viewed as an
implicit F-ary segment tree; node ``(level, i)`` spans
``[lo + i*w, lo + (i+1)*w)`` with ``w = fanout**(depth-level)`` cells.
Nodes materialize lazily as insert-only min/max SB-trees over the time
axis, all sharing one buffer pool.

Insertion walks the key's root-to-leaf path (``depth + 1`` nodes) and
inserts the tuple's validity interval with its value into each node tree.
A query covers the key range with canonical nodes — children fully inside
the range are taken whole, the two boundary children are descended — and
combines each covered node's SB-tree window query over the time interval.

Invariant tying the two dimensions together: a node's tree holds exactly
the tuples whose keys lie in the node's span, so a canonical cover of the
query range partitions the qualifying tuples, and MIN/MAX (idempotent,
commutative) over the cover equals MIN/MAX over the rectangle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.model import Interval, KeyRange, MAX_KEY, NOW
from repro.errors import QueryError, TimeOrderError
from repro.sbtree.minmax import MinMaxSBTree
from repro.storage.buffer import BufferPool


class RangeMinMaxIndex:
    """Range-temporal MIN or MAX for insert-only temporal tuples.

    Parameters
    ----------
    pool:
        Buffer pool shared by every node tree.
    mode:
        ``"min"`` or ``"max"``.
    key_space:
        Half-open key domain.
    fanout:
        Branching factor of the implicit key tree.  Higher fanout means
        cheaper updates (shallower paths) but larger query covers;
        ``8`` balances the two for the paper's 10^9 key space.
    capacity:
        Records per SB-tree page.
    time_domain:
        Half-open time domain of tuple validity intervals.
    """

    def __init__(self, pool: BufferPool, mode: str = "min",
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 fanout: int = 8, capacity: int = 32,
                 time_domain: Tuple[int, int] = (1, NOW)) -> None:
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if key_space[0] >= key_space[1]:
            raise ValueError(f"empty key space {key_space}")
        self.pool = pool
        self.mode = mode
        self.key_space = key_space
        self.fanout = fanout
        self.capacity = capacity
        self.time_domain = time_domain
        self.identity = float("inf") if mode == "min" else float("-inf")
        self._combine = min if mode == "min" else max

        span = key_space[1] - key_space[0]
        self.depth = 0
        width = 1
        while width < span:
            width *= fanout
            self.depth += 1
        self._width = width  # padded span: fanout ** depth

        #: (level, index) -> node SB-tree; materialized on first insert.
        self._nodes: Dict[Tuple[int, int], MinMaxSBTree] = {}
        self._insertions = 0
        self.now = time_domain[0]

    # -- updates -----------------------------------------------------------------------

    def insert(self, key: int, value: float, start: int,
               end: int = NOW) -> None:
        """Register a tuple with ``key``, valid over ``[start, end)``.

        ``end`` defaults to forever (append-only transaction-time use).
        Insertions must arrive in non-decreasing ``start`` order, like the
        rest of the library; there is no deletion (MIN/MAX lack inverses —
        the general case is the paper's open problem (ii)).
        """
        if not (self.key_space[0] <= key < self.key_space[1]):
            raise QueryError(f"key {key} outside key space {self.key_space}")
        if start < self.now:
            raise TimeOrderError(
                f"insertion at t={start} after the clock reached {self.now}"
            )
        if start >= end:
            raise QueryError(f"empty validity interval [{start},{end})")
        self.now = start
        offset = key - self.key_space[0]
        for level in range(self.depth + 1):
            cell = self._width // (self.fanout ** level)
            node = (level, offset // cell)
            tree = self._nodes.get(node)
            if tree is None:
                tree = MinMaxSBTree(self.pool, self.capacity,
                                    domain=self.time_domain, mode=self.mode)
                self._nodes[node] = tree
            tree.insert(start, min(end, self.time_domain[1]), value)
        self._insertions += 1

    # -- queries ------------------------------------------------------------------------

    def query(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """MIN/MAX over tuples with key in range intersecting the interval.

        Returns ``None`` when no tuple qualifies.  Cost: O(F log_F K)
        canonical nodes, each one SB-tree window query of O(log_b m) page
        reads — independent of the rectangle's tuple count.
        """
        if key_range.low < self.key_space[0] \
                or key_range.high > self.key_space[1]:
            raise QueryError(
                f"key range {key_range} outside key space {self.key_space}"
            )
        lo = max(interval.start, self.time_domain[0])
        hi = min(interval.end, self.time_domain[1])
        if lo >= hi:
            raise QueryError(
                f"interval {interval} outside time domain {self.time_domain}"
            )
        result = self.identity
        for node in self._canonical_cover(key_range):
            tree = self._nodes.get(node)
            if tree is None:
                continue
            result = self._combine(result, tree.window_query(lo, hi))
        return None if result == self.identity else result

    def query_at(self, key_range: KeyRange, t: int) -> Optional[float]:
        """MIN/MAX over tuples with key in range alive at instant ``t``."""
        return self.query(key_range, Interval(t, t + 1))

    def _canonical_cover(self, key_range: KeyRange) -> List[Tuple[int, int]]:
        """Canonical node cover of ``key_range`` (offsets within the padded
        span): children fully inside are taken whole, boundary children
        are descended."""
        lo = key_range.low - self.key_space[0]
        hi = key_range.high - self.key_space[0]
        cover: List[Tuple[int, int]] = []
        stack = [(0, 0)]
        while stack:
            level, index = stack.pop()
            cell = self._width // (self.fanout ** level)
            span_lo = index * cell
            span_hi = span_lo + cell
            if hi <= span_lo or lo >= span_hi:
                continue
            if lo <= span_lo and span_hi <= hi:
                cover.append((level, index))
                continue
            if level == self.depth:
                # Single-cell node partially covered cannot happen
                # (cell width 1), but guard against rounding drift.
                cover.append((level, index))
                continue
            for child in range(self.fanout):
                stack.append((level + 1, index * self.fanout + child))
        return cover

    # -- persistence -------------------------------------------------------------------

    def save(self, directory: str) -> None:
        """Checkpoint the index: every node tree shares this pool, so one
        checkpoint holds all pages; node identities go in the metadata."""
        from repro.storage.checkpoint import write_checkpoint

        meta = {
            "type": "range-minmax",
            "mode": self.mode,
            "key_space": list(self.key_space),
            "fanout": self.fanout,
            "capacity": self.capacity,
            "time_domain": [self.time_domain[0],
                            min(self.time_domain[1], 2**62)],
            "insertions": self._insertions,
            "now": self.now,
            "nodes": {
                f"{level}:{index}": {
                    "root_id": tree.root_id,
                    "height": tree.height,
                    "tree_insertions": tree.insertions,
                }
                for (level, index), tree in self._nodes.items()
            },
        }
        write_checkpoint(self.pool, meta, directory)

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64) -> "RangeMinMaxIndex":
        """Reopen an index from a checkpoint written by :meth:`save`."""
        from repro.storage.checkpoint import read_checkpoint

        pool, meta = read_checkpoint(directory, buffer_pages)
        if meta.get("type") != "range-minmax":
            raise ValueError(
                f"checkpoint holds a {meta.get('type')!r}, not a "
                "range-minmax index"
            )
        index = cls.__new__(cls)
        index.pool = pool
        index.mode = meta["mode"]
        index.key_space = tuple(meta["key_space"])
        index.fanout = meta["fanout"]
        index.capacity = meta["capacity"]
        index.time_domain = tuple(meta["time_domain"])
        index.identity = float("inf") if index.mode == "min" \
            else float("-inf")
        index._combine = min if index.mode == "min" else max
        index._insertions = meta["insertions"]
        index.now = meta["now"]
        span = index.key_space[1] - index.key_space[0]
        index.depth = 0
        width = 1
        while width < span:
            width *= index.fanout
            index.depth += 1
        index._width = width
        index._nodes = {}
        for node_key, node_meta in meta["nodes"].items():
            level_text, index_text = node_key.split(":")
            tree = MinMaxSBTree.__new__(MinMaxSBTree)
            tree.pool = pool
            tree.capacity = index.capacity
            tree.domain = index.time_domain
            tree.combine = index._combine
            tree.identity = index.identity
            tree.compact = True
            tree.mode = index.mode
            tree._root_id = node_meta["root_id"]
            tree._height = node_meta["height"]
            tree._insertions = node_meta["tree_insertions"]
            index._nodes[(int(level_text), int(index_text))] = tree
        return index

    # -- introspection ------------------------------------------------------------------

    @property
    def insertions(self) -> int:
        return self._insertions

    def node_count(self) -> int:
        """Materialized key-tree nodes (each one SB-tree)."""
        return len(self._nodes)

    def page_count(self) -> int:
        """Total pages across all node trees."""
        return self.pool.disk.live_page_count

    def check_invariants(self) -> None:
        """Audit every materialized node tree."""
        for tree in self._nodes.values():
            tree.check_invariants()
