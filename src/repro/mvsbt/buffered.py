"""Buffer-tree ingestion for the MVSBT: amortized bulk inserts.

:class:`MVSBTIngestBuffer` gives a tree in a buffered window (between
``MVSBT.begin_buffered()`` and ``MVSBT.end_buffered()``) a two-level
update-buffer hierarchy in the spirit of the persistent buffer tree:

* a **root intake buffer** absorbs ``insert`` calls as raw
  ``(key, t, value)`` triples — no descent, no page touch — and drains in
  one streaming pass once full;
* **per-leaf pending buffers** (``ColumnarBlock.pending``) hold each
  drained update at the end of its router path until the leaf's buffer
  fills, so the leaf-level record surgery for a run of co-located updates
  happens in one resident-page burst.

The drain pass routes each update down the current frontier with bisect
probes over columnar alive indexes, applying **interior** mutations (the
boundary successor splits of Appendix A's phase 3, plus any time/key
splits they trigger) immediately at the update's timestamp, and only
*deposits* the leaf-level work.  Interior steps cannot be deferred under
partial persistence: a later flush time would retire routers after
descendant records already referenced them, inverting version intervals —
so the amortization is exactly the leaf share of the work, which is where
the record churn is.

**Flush safety.**  A deposit is admitted only while

    ``count + 2 * (len(pending) + 1) <= capacity``

(each leaf apply creates at most two records), so flushing a pending
buffer can never overflow the page mid-flush — which matters because a
mid-flush time split would have to happen at a *buffered* timestamp older
than routers installed since, again inverting intervals.  When the guard
fails, the pending buffer is flushed, the incoming update is applied
directly (its timestamp is the current clock, so a time split is legal),
and any replacement pages propagate up the freshly captured router chain.

**Drain barrier.**  ``query(key, t)`` drains the intake, then force-
flushes only the frontier leaf on ``key``'s search path: a deposited
update ``(k', t', v)`` affects leaf-level contributions only for keys in
``[k', leaf.high)`` — a subset of its leaf's key range — while its effect
on higher keys travelled through the interior splits that were applied on
arrival.  Off-path leaves keep their buffers, so reads stay live during
ingest without paying for it.  Answers are byte-identical to the direct
path: every record mutation replays the object kernels' arithmetic on the
same values in the same order.

The kernels below are line-for-line columnar twins of the tree's batch
kernels (``_apply_at_lowest_batched`` / ``_apply_at_parent_batched`` /
``_vertical_split_batched`` / ``_merge_around_batched`` / ``_time_split``)
— the metamorphic tests in ``tests/mvsbt/test_buffered.py`` hold the two
paths to identical query answers over random workloads.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.core.model import NOW
from repro.errors import InvariantViolation, QueryError, TimeOrderError
from repro.mvsbt.columnar import ColumnarBlock, materialize_page, seal_page
from repro.mvsbt.records import LEAF_KIND
from repro.storage.page import Page

#: Intake triples buffered before a drain pass.
DEFAULT_INTAKE_LIMIT = 8192
#: Hard cap on one leaf's pending buffer (the capacity guard usually
#: binds first; this bounds pathological all-one-leaf workloads).
DEFAULT_PENDING_LIMIT = 64


class MVSBTIngestBuffer:
    """The buffered-window ingestion engine attached to one MVSBT."""

    def __init__(self, tree, intake_limit: int = DEFAULT_INTAKE_LIMIT,
                 pending_limit: int = DEFAULT_PENDING_LIMIT) -> None:
        if not tree.config.logical_split:
            raise ValueError(
                "buffered ingestion requires the logical (delta) value "
                "semantics; physical mode has no batched kernel to twin"
            )
        if intake_limit < 1 or pending_limit < 1:
            raise ValueError("intake and pending limits must be >= 1")
        self.tree = tree
        self.intake_limit = intake_limit
        self.pending_limit = pending_limit
        self._intake: List[Tuple[int, int, float]] = []
        #: Sealed pages by id.  Double duty: the routing pass resolves page
        #: ids here before falling back to the pool (sealed pages are
        #: pinned, so the registry and the pool frame are the same object),
        #: and finalization walks it to flush pending buffers and restore
        #: the frontier.
        self._sealed: dict[int, Page] = {}
        # Hot-loop caches of per-window constants.
        self._capacity = tree.config.capacity
        self._merging = tree.config.record_merging
        self._counters = tree.counters
        #: Window statistics (drains, leaf flushes, deposited updates).
        self.drains = 0
        self.leaf_flushes = 0
        self.deposited = 0

    # -- intake ------------------------------------------------------------------

    def add(self, key: int, t: int, value: float) -> None:
        """Buffer one quadrant update (the window's ``insert``)."""
        tree = self.tree
        if t < tree.now:
            raise TimeOrderError(
                f"insertion at t={t} after the clock reached {tree.now}"
            )
        tree.now = t
        if key >= tree.key_space[1] or value == 0:
            tree.counters.noop_insertions += 1
            return
        key = max(key, tree.key_space[0])
        tree.counters.insertions += 1
        if tree.memo is not None:
            tree._memo_epoch += 1
        self._intake.append((key, t, value))
        if len(self._intake) >= self.intake_limit:
            self.drain()

    def drain(self) -> None:
        """Route every intake triple down the frontier (streaming pass)."""
        intake = self._intake
        if not intake:
            return
        self._intake = []
        self.drains += 1
        route = self._route
        for key, t, value in intake:
            route(key, t, value)

    # -- the per-update routing pass ---------------------------------------------

    def _adopt(self, pid: int) -> Page:
        """Cold path of page resolution: fetch, register, pin.

        Sealed pages are pinned for the life of the window, so the pool can
        never replace the frame object behind the registry's back (the pool
        over-commits instead; the batch window opened by
        ``MVSBT.begin_buffered`` keeps its victim scan amortized O(1)).
        """
        pool = self.tree.pool
        page = pool.fetch(pid)
        self._sealed[pid] = page
        pool.pin(pid)
        return page

    def _route(self, key: int, t: int, value: float) -> None:
        """One update's descent: immediate interior work, deferred leaf work."""
        tree = self.tree
        sealed_get = self._sealed.get
        pid = tree.roots.latest.root_id
        page = sealed_get(pid)
        if page is None:
            page = self._adopt(pid)
        block = page.cache
        if type(block) is not ColumnarBlock:
            block = seal_page(page)
        # (page, block, router row, alive slot, router.high) per level with
        # a partly-covered router — the phase-3 walk-back chain.
        chain: List[Tuple[Page, ColumnarBlock, int, int, int]] = []
        append = chain.append
        while not block.leaf:
            i = bisect_right(block.alive_lows, key) - 1
            row = block.alive[i]
            lows = block.lows
            highs = block.highs
            if lows[row] < key < highs[row]:
                append((page, block, row, i, highs[row]))
                pid = block.childs[row]
                page = sealed_get(pid)
                if page is None:
                    page = self._adopt(pid)
                block = page.cache
                if type(block) is not ColumnarBlock:
                    block = seal_page(page)
                continue
            break

        if block.leaf:
            new_children = self._deposit(page, block, key, t, value)
        else:
            # Lowest page is an index page (key on a record boundary).
            new_children = self._apply_index_lowest(page, block, key, t,
                                                    value)
        for ppage, pblock, prow, pidx, boundary in reversed(chain):
            new_children = self._parent_step(ppage, pblock, prow, pidx,
                                             boundary, new_children, t,
                                             value)
        if new_children:
            tree._install_new_root(new_children, t)

    def _deposit(self, page: Page, block: ColumnarBlock, key: int, t: int,
                 value: float) -> Tuple[Page, ...]:
        """Queue the leaf-level work, or flush-and-apply when full."""
        pending = block.pending
        n = len(pending)
        if n < self.pending_limit and \
                block.count + 2 * n + 2 <= self._capacity:
            pending.append((key, t, value))
            self.deposited += 1
            return ()
        self._flush_leaf(page, block)
        self._leaf_apply(page, block, key, t, value)
        if block.count > self._capacity:
            return self._time_split(page, block, t)
        return ()

    def _flush_leaf(self, page: Page, block: ColumnarBlock) -> None:
        """Apply a leaf's pending updates in deposit (= time) order.

        The deposit guard proved ``count`` stays within capacity for the
        whole run, so no split can be needed mid-flush.
        """
        pending = block.pending
        if not pending:
            return
        block.pending = []
        self.leaf_flushes += 1
        apply = self._leaf_apply
        for k, te, v in pending:
            apply(page, block, k, te, v)

    # -- columnar twins of the batch kernels -------------------------------------

    def _leaf_apply(self, page: Page, block: ColumnarBlock, key: int, t: int,
                    value: float) -> None:
        """Columnar ``_apply_at_lowest_batched`` for a leaf (sans overflow)."""
        counters = self._counters
        lows, highs = block.lows, block.highs
        starts, ends, values = block.starts, block.ends, block.values
        alive, alive_lows = block.alive, block.alive_lows
        i = bisect_right(alive_lows, key) - 1
        row = alive[i] if i >= 0 else -1
        if i >= 0 and lows[row] < key < highs[row]:
            # Horizontal split of the partly-covered record (``append_row``
            # inlined; a leaf block has no child column).
            if starts[row] == t:
                high = highs[row]
                highs[row] = key
                upper = len(lows)
                lows.append(key)
                highs.append(high)
                starts.append(t)
                ends.append(NOW)
                values.append(value)
                block.count += 1
                alive.insert(i + 1, upper)
                alive_lows.insert(i + 1, key)
            else:
                ends[row] = t
                low, high, old_value = lows[row], highs[row], values[row]
                if block.closes is not None:
                    block.closes[(low, high)] = row
                lower = len(lows)
                upper = lower + 1
                lows.append(low)
                highs.append(key)
                starts.append(t)
                ends.append(NOW)
                values.append(old_value)
                lows.append(key)
                highs.append(high)
                starts.append(t)
                ends.append(NOW)
                values.append(value)
                block.count += 2
                alive[i] = lower
                alive.insert(i + 1, upper)
                alive_lows.insert(i + 1, key)
            page.mark_dirty()
            counters.records_created += 2
            fresh, idx = upper, i + 1
        else:
            j = bisect_left(alive_lows, key)
            assert j < len(alive), (
                f"page {page.page_id} has neither partly- nor fully-covered "
                f"record for key {key}"
            )
            fresh, idx = self._vertical_split(page, block, j, t, value)
            counters.records_created += 1
        self._merge_around(page, block, fresh, idx)

    def _apply_index_lowest(self, page: Page, block: ColumnarBlock, key: int,
                            t: int, value: float) -> Tuple[Page, ...]:
        """Phase 2 when the lowest page of the path is an index page."""
        j = bisect_left(block.alive_lows, key)
        assert j < len(block.alive), (
            f"page {page.page_id} has neither partly- nor fully-covered "
            f"record for key {key}"
        )
        fresh, idx = self._vertical_split(page, block, j, t, value)
        self._counters.records_created += 1
        self._merge_around(page, block, fresh, idx)
        if block.count > self._capacity:
            return self._time_split(page, block, t)
        return ()

    def _parent_step(self, page: Page, block: ColumnarBlock, row: int,
                     idx: int, boundary: int, new_children, t: int,
                     value: float) -> Tuple[Page, ...]:
        """Columnar ``_apply_at_parent_batched`` (including child installs)."""
        if new_children:
            self._retire_install(page, block, row, idx, new_children, t)
        alive_lows = block.alive_lows
        j = bisect_left(alive_lows, boundary)
        if j < len(alive_lows) and alive_lows[j] == boundary:
            fresh, fidx = self._vertical_split(page, block, j, t, value)
            self._counters.records_created += 1
            self._merge_around(page, block, fresh, fidx)
        if block.count > self._capacity:
            return self._time_split(page, block, t)
        return ()

    def _retire_install(self, page: Page, block: ColumnarBlock, row: int,
                        idx: int, new_children, t: int) -> None:
        """Retire the split child's router, install its replacements."""
        counters = self._counters
        router_value = block.values[row]
        if block.starts[row] == t:
            block.tombstone(row)
        else:
            block.ends[row] = t
            if block.closes is not None:
                block.closes[(block.lows[row], block.highs[row])] = row
        page.mark_dirty()
        alive, alive_lows = block.alive, block.alive_lows
        del alive[idx]
        del alive_lows[idx]
        pos = idx
        for position, child in enumerate(new_children):
            inherited = router_value if position == 0 else 0.0
            meta = child.meta
            new_row = block.append_row(meta["low"], meta["high"], t, NOW,
                                       inherited, child.page_id)
            counters.records_created += 1
            alive.insert(pos, new_row)
            alive_lows.insert(pos, meta["low"])
            # Index pages only time-merge; the alive list length is stable.
            self._merge_around(page, block, new_row, pos)
            pos += 1

    def _vertical_split(self, page: Page, block: ColumnarBlock, j: int,
                        t: int, value: float) -> Tuple[int, int]:
        """Columnar ``_vertical_split_batched``: returns ``(row, slot)``."""
        alive = block.alive
        row = alive[j]
        values = block.values
        new_value = values[row] + value
        starts = block.starts
        if starts[row] == t:
            values[row] = new_value
            page.mark_dirty()
            return row, j
        # Close the old row and append its restarted clone (inlined
        # ``append_row`` — this is the hottest allocation site).
        ends = block.ends
        ends[row] = t
        lows, highs = block.lows, block.highs
        low, high = lows[row], highs[row]
        if block.closes is not None:
            block.closes[(low, high)] = row
        fresh = len(lows)
        lows.append(low)
        highs.append(high)
        starts.append(t)
        ends.append(NOW)
        values.append(new_value)
        childs = block.childs
        if childs is not None:
            childs.append(childs[row])
        block.count += 1
        page.mark_dirty()
        alive[j] = fresh
        return fresh, j

    def _merge_around(self, page: Page, block: ColumnarBlock, row: int,
                      idx: int) -> None:
        """Columnar ``_merge_around_batched`` (section 4.2.2 merging)."""
        if not self._merging:
            return
        counters = self._counters
        closes = block.closes
        if closes is None:
            closes = block.build_closes()
        lows, highs = block.lows, block.highs
        starts, ends, values = block.starts, block.ends, block.values
        childs = block.childs
        alive, alive_lows = block.alive, block.alive_lows
        cand = closes.get((lows[row], highs[row]))
        if (cand is not None and ends[cand] == starts[row]
                and values[cand] == values[row]
                and (childs is None or childs[cand] == childs[row])):
            del closes[(lows[row], highs[row])]
            # The fresh row is removed; the candidate was dead (physical)
            # all along, so resurrecting it leaves the count unchanged.
            block.tombstone(row)
            ends[cand] = NOW
            page.mark_dirty()
            alive[idx] = cand
            counters.time_merges += 1
            row = cand
        if not block.leaf:
            return
        merged = False
        if values[row] == 0 and idx > 0:
            lower = alive[idx - 1]
            if highs[lower] == lows[row] and starts[lower] == starts[row]:
                highs[lower] = highs[row]
                block.tombstone(row)
                page.mark_dirty()
                del alive[idx]
                del alive_lows[idx]
                idx -= 1
                row = lower
                merged = True
        if idx + 1 < len(alive):
            upper = alive[idx + 1]
            if (values[upper] == 0 and lows[upper] == highs[row]
                    and starts[upper] == starts[row]):
                highs[row] = highs[upper]
                block.tombstone(upper)
                page.mark_dirty()
                del alive[idx + 1]
                del alive_lows[idx + 1]
                merged = True
        if merged:
            counters.key_merges += 1

    def _time_split(self, page: Page, block: ColumnarBlock,
                    t: int) -> List[Page]:
        """Columnar ``MVSBT._time_split``: restart alive rows in fresh pages."""
        tree = self.tree
        cfg = tree.config
        counters = self._counters
        counters.time_splits += 1
        alive = block.alive
        b_lows = [block.lows[r] for r in alive]
        b_highs = [block.highs[r] for r in alive]
        b_values = [block.values[r] for r in alive]
        b_childs = (None if block.childs is None
                    else [block.childs[r] for r in alive])
        n = len(alive)
        page.meta["death"] = t
        dispose = cfg.page_disposal and page.meta["birth"] == t
        if not dispose:
            # A disposed page is freed below — pruning it is dead work.
            self._prune_born_at(block, t)
            page.mark_dirty()

        if n > cfg.strong_bound:
            counters.key_splits += 1
            pieces = -(-n // cfg.strong_bound)  # ceil division
            base, extra = divmod(n, pieces)
            bounds: List[Tuple[int, int]] = []
            cursor = 0
            for i in range(pieces):
                size = base + (1 if i < extra else 0)
                bounds.append((cursor, cursor + size))
                cursor += size
            # Section 4.2.1 folding: each higher page's lowest record
            # absorbs the prefix sum of the lower pages' original values.
            originals = [sum(b_values[lo:hi]) for lo, hi in bounds]
            cumulative = 0.0
            for i, (lo, _hi) in enumerate(bounds):
                if i > 0:
                    b_values[lo] += cumulative
                cumulative += originals[i]
        else:
            bounds = [(0, n)]

        level = page.meta["level"]
        kind = page.kind
        new_pages: List[Page] = []
        for lo, hi in bounds:
            fresh = tree._new_page(kind, b_lows[lo], b_highs[hi - 1], t,
                                   level)
            nb = ColumnarBlock(block.leaf)
            size = hi - lo
            nb.lows = b_lows[lo:hi]
            nb.highs = b_highs[lo:hi]
            nb.starts = [t] * size
            nb.ends = [NOW] * size
            nb.values = b_values[lo:hi]
            if b_childs is not None:
                nb.childs = b_childs[lo:hi]
            nb.alive = list(range(size))
            nb.alive_lows = b_lows[lo:hi]
            nb.count = size
            fresh.records = None
            fresh.cache = nb
            fresh.meta["born_count"] = size
            fresh.mark_dirty()
            self._sealed[fresh.page_id] = fresh
            tree.pool.pin(fresh.page_id)
            new_pages.append(fresh)
            counters.records_created += size

        if dispose:
            if self._sealed.pop(page.page_id, None) is not None:
                tree.pool.unpin(page.page_id)
            tree.pool.free(page.page_id)
            counters.disposals += 1
        return new_pages

    @staticmethod
    def _prune_born_at(block: ColumnarBlock, t: int) -> None:
        """Drop rows born at ``t`` from a page dying at ``t`` (tombstoning).

        A row with ``start == t`` at the instant the clock *is* ``t`` can
        only be alive or already a tombstone, so tombstoning it (empty
        interval) is exactly the object kernel's physical removal under
        this module's representation — surviving rows keep their order and
        the arrays are not rebuilt.  The page is dead after this call: its
        router is retired, so it is never routed again — the alive index
        is cleared, not rebuilt.
        """
        starts, ends = block.starts, block.ends
        count = block.count
        for r in range(len(starts)):
            if starts[r] == t and ends[r] != t:
                ends[r] = t
                count -= 1
        block.count = count
        block.closes = None
        block.alive = []
        block.alive_lows = []

    # -- the drain barrier (reads during the window) ------------------------------

    def query(self, key: int, t: int) -> float:
        """``V(key, t)`` through the barrier: drain, path-flush, descend."""
        tree = self.tree
        if not (tree.key_space[0] <= key < tree.key_space[1]):
            raise QueryError(
                f"key {key} outside key space {tree.key_space}"
            )
        if t < tree.start_time:
            return 0.0
        self.drain()
        self._flush_frontier(key)
        return self._descend(key, t)

    def _flush_frontier(self, key: int) -> None:
        """Force-flush only the frontier leaf on ``key``'s search path."""
        tree = self.tree
        fetch = tree.pool.fetch
        sealed_get = self._sealed.get
        pid = tree.roots.latest.root_id
        while True:
            page = sealed_get(pid)
            if page is None:
                page = fetch(pid)
            block = page.cache
            if type(block) is ColumnarBlock:
                if block.leaf:
                    if block.pending:
                        self._flush_leaf(page, block)
                    return
                i = bisect_right(block.alive_lows, key) - 1
                pid = block.childs[block.alive[i]]
                continue
            # Unsealed page (e.g. a fresh object-record root): object leaves
            # hold no pending buffer, object routers are scanned directly.
            if page.kind == LEAF_KIND:
                return
            nxt = None
            for rec in page.records:
                if rec.alive and rec.low <= key < rec.high:
                    nxt = rec.child
                    break
            if nxt is None:
                raise InvariantViolation(
                    f"page {page.page_id} does not cover key {key} on the "
                    "frontier"
                )
            pid = nxt

    def _descend(self, key: int, t: int) -> float:
        """Mixed-representation twin of ``MVSBT._descend`` (logical mode)."""
        tree = self.tree
        fetch = tree.pool.fetch
        sealed_get = self._sealed.get
        acc = 0.0
        pid = tree.roots.find(t).root_id
        pages = 0
        while True:
            page = sealed_get(pid)
            if page is None:
                page = fetch(pid)
            block = page.cache
            pages += 1
            if type(block) is ColumnarBlock:
                delta, containing = block.scan(key, t)
                acc += delta
                if containing is None:
                    raise InvariantViolation(
                        f"page {page.page_id} does not cover key {key} "
                        f"at t={t}"
                    )
                if block.leaf:
                    break
                pid = block.childs[containing]
            else:
                delta, containing = tree._scan_page(page, key, t, True)
                acc += delta
                if containing is None:
                    raise InvariantViolation(
                        f"page {page.page_id} does not cover key {key} "
                        f"at t={t}"
                    )
                if page.kind == LEAF_KIND:
                    break
                pid = containing.child
        if tree.metrics is not None:
            tree.metrics.descent_pages.observe(pages)
        return acc

    # -- window teardown -----------------------------------------------------------

    def flush_all_pending(self) -> None:
        """Drain the intake and flush every leaf's pending buffer."""
        self.drain()
        for page in list(self._sealed.values()):
            block = page.cache
            if (type(block) is ColumnarBlock and block.leaf
                    and block.pending):
                self._flush_leaf(page, block)

    def barrier_all(self) -> None:
        """Full barrier: flush everything and restore object records.

        For whole-tree observers that insist on object records inside the
        window; the window stays open (pages remain registered and pinned)
        and pages reseal on next touch.
        """
        self.flush_all_pending()
        for page in self._sealed.values():
            materialize_page(page)

    def finalize(self) -> None:
        """Close the window: flush everything, restore the frontier.

        Only **alive** pages are materialized back to object records — the
        object insertion kernels touch nothing else.  Historical pages
        written during the window stay columnar; the query descent and the
        page codecs (``encode_page_image``) read them directly, so closing
        the window costs O(frontier), not O(pages written).
        """
        self.flush_all_pending()
        unpin = self.tree.pool.unpin
        for pid, page in self._sealed.items():
            if page.meta["death"] == NOW:
                materialize_page(page)
            unpin(pid)
        self._sealed.clear()
