"""Page-level operations of the MVSBT insertion algorithm.

The vocabulary comes straight from section 4.1 of the paper.  For a page
``p`` and insertion key ``k``, among the records *alive* in ``p``:

* the **partly-covered** record is the unique one whose key range contains
  ``k`` strictly inside (``low < k < high``) — its range intersects the
  quadrant ``[k, maxkey]`` without being contained in it;
* a **fully-covered** record has ``low >= k``;
* the **first fully-covered** record is the fully-covered record with the
  lowest range.

Vertical (time) splits are the persistence primitive: a record alive since
``start < t`` is closed at ``t`` and a copy alive from ``t`` carries the new
value.  A record already born at ``t`` is updated in place — the paper's
page-disposal philosophy applied at record granularity (an empty-lifespan
record can never be observed by any version).

Lookups exploit Property 1 (the alive records of a page tile its key range,
so their ``low`` endpoints are strictly increasing): each page keeps a
sorted *alive mirror* in ``Page.cache``, validated against ``Page.version``,
and the ``find_*`` helpers binary-search it.  Tiling makes each sought
record unique, so the bisect results are exactly the records the original
linear scans returned.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple, Union

from repro.core.model import NOW
from repro.storage.page import Page
from repro.mvsbt.records import (
    INDEX_KIND,
    LEAF_KIND,
    MVSBTIndexRecord,
    MVSBTLeafRecord,
)

Record = Union[MVSBTLeafRecord, MVSBTIndexRecord]


def is_leaf(page: Page) -> bool:
    """True for MVSBT leaf pages."""
    return page.kind == LEAF_KIND


class _AliveMirror:
    """Sorted snapshot of a page's alive records, tagged with ``Page.version``.

    ``alive`` is the alive records sorted by ``low`` (Property 1 makes the
    lows strictly increasing), ``lows`` the parallel key list fed to
    :mod:`bisect`.  ``closes`` is a lazily built map from a record's
    ``(low, high)`` range to the *latest-closed* dead record with that range,
    used by the batch kernel for O(1) time-merge candidate probing.
    """

    __slots__ = ("version", "alive", "lows", "closes")

    def __init__(self, page: Page) -> None:
        self.version = page.version
        self.alive: List[Record] = sorted(
            (rec for rec in page.records if rec.alive),
            key=lambda rec: rec.low,
        )
        self.lows: List[int] = [rec.low for rec in self.alive]
        self.closes: Optional[Dict[Tuple[int, int], Record]] = None


def mirror(page: Page) -> _AliveMirror:
    """The page's alive mirror, rebuilt when ``Page.version`` moved on."""
    m = page.cache
    if m is None or m.version != page.version:
        m = _AliveMirror(page)
        page.cache = m
    return m


def alive_records(page: Page) -> List[Record]:
    """Alive records sorted by key range (they tile the page's range)."""
    return list(mirror(page).alive)


def find_partly_covered(page: Page, key: int) -> Optional[Record]:
    """The alive record with ``low < key < high``, if any."""
    m = mirror(page)
    i = bisect_right(m.lows, key) - 1
    if i >= 0:
        rec = m.alive[i]
        if rec.low < key < rec.high:
            return rec
    return None


def find_first_fully_covered(page: Page, key: int) -> Optional[Record]:
    """The alive record with the smallest ``low >= key``, if any."""
    m = mirror(page)
    i = bisect_left(m.lows, key)
    if i < len(m.alive):
        return m.alive[i]
    return None


def find_successor(page: Page, boundary: int) -> Optional[Record]:
    """The alive record starting exactly at key ``boundary``, if any."""
    m = mirror(page)
    i = bisect_left(m.lows, boundary)
    if i < len(m.alive) and m.alive[i].low == boundary:
        return m.alive[i]
    return None


def find_alive_by_child(page: Page, child_id: int) -> Optional[MVSBTIndexRecord]:
    """The alive router pointing at ``child_id``, if any."""
    for rec in page.records:
        if rec.alive and rec.child == child_id:
            return rec
    return None


def append_record(page: Page, record: Record) -> None:
    """Append without the transient-overflow guard of :meth:`Page.add`.

    MVSBT insertions may legitimately push a page several records past
    capacity before the time split runs.
    """
    page.records.append(record)
    page.mark_dirty()


def clone(record: Record, start: int) -> Record:
    """An alive copy of ``record`` starting at ``start`` (time-split copy)."""
    if isinstance(record, MVSBTIndexRecord):
        return MVSBTIndexRecord(record.low, record.high, start, NOW,
                                record.value, record.child)
    return MVSBTLeafRecord(record.low, record.high, start, NOW, record.value)


def vertical_split(page: Page, record: Record, t: int,
                   new_value: float) -> Record:
    """Close ``record`` at ``t`` and create its successor carrying ``new_value``.

    A record born at ``t`` is updated in place instead (its old state was
    never observable).  Returns the record that is alive after the call.
    """
    if record.start == t:
        record.value = new_value
        page.mark_dirty()
        return record
    record.end = t
    fresh = clone(record, t)
    fresh.value = new_value
    append_record(page, fresh)
    return fresh


def horizontal_split_leaf(page: Page, record: MVSBTLeafRecord, key: int,
                          t: int, upper_value: float) -> MVSBTLeafRecord:
    """Split a leaf record at ``t`` (vertically) and ``key`` (horizontally).

    The lower piece ``[low, key)`` keeps the record's value; the upper piece
    ``[key, high)`` carries ``upper_value`` (the insertion delta in logical
    mode, the full updated value in physical mode).  Returns the upper piece.
    """
    assert record.low < key < record.high, "not a partly-covered record"
    if record.start == t:
        upper = MVSBTLeafRecord(key, record.high, t, NOW, upper_value)
        record.high = key
        append_record(page, upper)
        return upper
    record.end = t
    lower = MVSBTLeafRecord(record.low, key, t, NOW, record.value)
    upper = MVSBTLeafRecord(key, record.high, t, NOW, upper_value)
    append_record(page, lower)
    append_record(page, upper)
    return upper


def prune_born_at(page: Page, t: int) -> None:
    """Drop records born at ``t`` from a page dying at ``t``.

    Such records have an empty responsibility window in this page — their
    authoritative copies live in the page's successors — and pruning them
    restores the page to within physical capacity.
    """
    page.records = [rec for rec in page.records if rec.start != t]
    page.mark_dirty()


def try_time_merge(page: Page, record: Record) -> Optional[Record]:
    """Undo a vertical split whose effect cancelled out (section 4.2.2).

    If a dead record in the page has the same range (and child), ends
    exactly where ``record`` begins, and carries the same value, the split
    carried no information: ``record`` is removed and the dead record is
    resurrected.  Returns the surviving record on success.
    """
    if not record.alive:
        return None
    for dead in page.records:
        if dead is record or dead.alive:
            continue
        if (dead.low == record.low and dead.high == record.high
                and dead.end == record.start
                and dead.value == record.value
                and _same_child(dead, record)):
            page.records.remove(record)
            dead.end = NOW
            page.mark_dirty()
            return dead
    return None


def try_key_merge(page: Page, record: Record) -> Optional[Record]:
    """Merge a zero-delta leaf record into its lower neighbour (section 4.2.2).

    Requires equal intervals (both alive, equal start) and range adjacency;
    only meaningful under logical (delta) value semantics, where a zero
    delta means "same aggregate as the record below".  Returns the widened
    survivor on success.
    """
    if not isinstance(record, MVSBTLeafRecord) or not record.alive:
        return None
    survivor: Optional[Record] = None
    if record.value == 0:
        for lower in page.records:
            if (lower is not record and lower.alive
                    and isinstance(lower, MVSBTLeafRecord)
                    and lower.high == record.low
                    and lower.start == record.start):
                lower.high = record.high
                page.records.remove(record)
                page.mark_dirty()
                survivor = lower
                break
    target = survivor if survivor is not None else record
    # The upper neighbour may itself hold a zero delta: absorb it too.
    for upper in list(page.records):
        if (upper is not target and upper.alive
                and isinstance(upper, MVSBTLeafRecord)
                and upper.value == 0
                and upper.low == target.high
                and upper.start == target.start):
            target.high = upper.high
            page.records.remove(upper)
            page.mark_dirty()
            survivor = target
            break
    return survivor


def _same_child(a: Record, b: Record) -> bool:
    a_child = getattr(a, "child", None)
    b_child = getattr(b, "child", None)
    return a_child == b_child


def check_tiling_at(page: Page, t: int) -> Optional[str]:
    """Property 1 at one instant: alive-at-t records tile the page range."""
    alive = sorted(
        (rec for rec in page.records if rec.alive_at(t)),
        key=lambda rec: rec.low,
    )
    if not alive:
        return f"page {page.page_id}: no alive records at t={t}"
    if alive[0].low != page.meta["low"]:
        return (
            f"page {page.page_id} at t={t}: coverage starts at "
            f"{alive[0].low}, page range starts at {page.meta['low']}"
        )
    if alive[-1].high != page.meta["high"]:
        return (
            f"page {page.page_id} at t={t}: coverage ends at "
            f"{alive[-1].high}, page range ends at {page.meta['high']}"
        )
    for left, right in zip(alive, alive[1:]):
        if left.high != right.low:
            return (
                f"page {page.page_id} at t={t}: gap/overlap at "
                f"[{left.high}, {right.low})"
            )
    return None
