"""MVSBT records: rectangles in key-time space carrying aggregate deltas.

A leaf record is ``<range, interval, value>``; an index record additionally
routes to a child page (paper section 4.1).  Property 1: the records of a
page tile the page's rectangle — at any instant of the page's lifespan the
records alive at that instant partition the page's key range.

Under the default "aggregation in a page" mode (section 4.2.1) a record's
``value`` is a *delta* over the next-lower alive record of the same page:
the page's contribution to a point query ``(k, t)`` is the sum of values of
its records alive at ``t`` with ``low <= k`` (exactly Appendix A's
``PagePointQuery``).  Under the unoptimized physical mode each record's
value is its full contribution and a query reads one record per page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import NOW
from repro.storage.serialization import RecordCodec, register_codec

LEAF_KIND = "mvsbt-leaf"
INDEX_KIND = "mvsbt-index"


@dataclass(slots=True)
class MVSBTLeafRecord:
    """Rectangle ``[low, high) x [start, end)`` carrying ``value``."""

    low: int
    high: int
    start: int
    end: int
    value: float

    @property
    def alive(self) -> bool:
        return self.end == NOW

    def alive_at(self, t: int) -> bool:
        """True when the record's interval contains instant ``t``."""
        return self.start <= t < self.end

    def covers_key(self, key: int) -> bool:
        """True when the record's range contains ``key``."""
        return self.low <= key < self.high

    def contains(self, key: int, t: int) -> bool:
        """True when the rectangle contains the key-time point."""
        return self.covers_key(key) and self.alive_at(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "now" if self.end == NOW else self.end
        return f"L([{self.low},{self.high})x[{self.start},{end}) v={self.value})"


@dataclass(slots=True)
class MVSBTIndexRecord:
    """Leaf record fields plus the child page router."""

    low: int
    high: int
    start: int
    end: int
    value: float
    child: int

    @property
    def alive(self) -> bool:
        return self.end == NOW

    def alive_at(self, t: int) -> bool:
        """True when the record's interval contains instant ``t``."""
        return self.start <= t < self.end

    def covers_key(self, key: int) -> bool:
        """True when the record's range contains ``key``."""
        return self.low <= key < self.high

    def contains(self, key: int, t: int) -> bool:
        """True when the rectangle contains the key-time point."""
        return self.covers_key(key) and self.alive_at(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "now" if self.end == NOW else self.end
        return (
            f"I([{self.low},{self.high})x[{self.start},{end}) "
            f"v={self.value} -> {self.child})"
        )


register_codec(LEAF_KIND, RecordCodec(
    fmt="<qqqqd",
    to_tuple=lambda r: (r.low, r.high, r.start, r.end, r.value),
    from_tuple=lambda t: MVSBTLeafRecord(*t),
))
register_codec(INDEX_KIND, RecordCodec(
    fmt="<qqqqdq",
    to_tuple=lambda r: (r.low, r.high, r.start, r.end, r.value, r.child),
    from_tuple=lambda t: MVSBTIndexRecord(*t),
))

LEAF_RECORD_BYTES = 40
INDEX_RECORD_BYTES = 48

#: The paper's 4-byte-field layout (section 5): range + interval + value.
PAPER_LEAF_RECORD_BYTES = 20
PAPER_INDEX_RECORD_BYTES = 24
