"""The Multiversion SB-Tree (MVSBT) — the paper's contribution (section 4).

The MVSBT is an SB-tree over the *key* axis made partially persistent over
the *time* axis.  It maintains a value surface ``V(key, time)`` (initially 0
everywhere) under two operations, both in logarithmic I/Os:

* ``insert(k, t, v)`` — add ``v`` to every point of the quadrant
  ``[k, maxkey] x [t, maxtime]`` (updates arrive in non-decreasing ``t``);
* ``query(k, t)`` — read ``V(k, t)``.

Those are exactly the primitives the paper's Theorem 1 reduction needs: a
range-temporal aggregate decomposes into six such point queries over two
MVSBTs (see :mod:`repro.core.rta`).

The implementation includes all three optimizations of section 4.2 —
aggregation-in-a-page (logical splitting, the default write mode), record
merging, and page disposal — each independently toggleable for the
ablation benchmarks.
"""

from repro.mvsbt.records import MVSBTIndexRecord, MVSBTLeafRecord
from repro.mvsbt.tree import MVSBT, MVSBTConfig, MVSBTCounters

__all__ = [
    "MVSBT",
    "MVSBTConfig",
    "MVSBTCounters",
    "MVSBTIndexRecord",
    "MVSBTLeafRecord",
]
