"""The Multiversion SB-Tree (paper section 4, algorithms of Appendix A).

The MVSBT maintains a value surface ``V(key, time)`` under quadrant updates
``insert(k, t, v)`` (add ``v`` over ``[k, maxkey] x [t, maxtime]``, ``t``
non-decreasing) and point queries ``query(k, t)``, both in logarithmic I/Os.
It is an SB-tree over the key axis made partially persistent over time:
records are rectangles in key-time space, each page's records tile the
page's rectangle (Property 1), and the roots of the embedded SB-trees
partition the time axis through ``root*``.

Two write modes:

* **logical** (default; section 4.2.1 "aggregation in a page") — a record's
  value is a delta over the next-lower alive record of its page; a point
  query sums, per page on the descent path, the values of records alive at
  ``t`` with ``low <= k`` (Appendix A's ``PagePointQuery``).  An insertion
  physically splits at most one record per page.
* **physical** — every record carries the full contribution of its
  rectangle at its level, a query reads one record per page, and an
  insertion must split *every* fully-covered record (Theta(b) per page).
  Kept for the A2 ablation; answers are identical.

Overflow handling (section 4.1): a page with more than ``b`` records is
*time split* — alive records are copied, restarted at ``t``, into a fresh
page; if the copy *strong overflows* (more than ``f*b`` records, ``f`` the
strong factor) it is *key split* into evenly loaded pages.  In logical mode
a key split folds the running prefix of lower pages into the first record
of each higher page, and of the index records replacing the dead page's
router the lowest inherits the router's value while the rest carry 0 —
together these preserve the path-sum invariant:

    for every (k, t):  V(k, t) = sum over pages p on the root(t)-to-leaf
    path of  sum { rec.value : rec in p alive at t, rec.low <= k }.

Record merging (4.2.2) and page disposal (4.2.3) are space optimizations,
both on by default and individually toggleable.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.model import MAX_KEY, NOW
from repro.errors import InvariantViolation, QueryError, TimeOrderError
from repro.mvsbt import pageops as ops
from repro.mvsbt.columnar import materialize_page
from repro.mvsbt.records import (
    INDEX_KIND,
    LEAF_KIND,
    MVSBTIndexRecord,
    MVSBTLeafRecord,
)
from repro.storage.buffer import BufferPool
from repro.storage.page import Page
from repro.storage.rootstar import RootDirectory


@dataclass(frozen=True)
class MVSBTConfig:
    """MVSBT parameters: page capacity ``b``, strong factor ``f``, toggles.

    The paper requires ``f`` large enough that a time-split copy still
    allows a fan-out of at least two (section 4.4); concretely we require
    ``floor(f * b) >= 2``.  The paper's experiments use ``f = 0.9``.
    """

    capacity: int = 32
    strong_factor: float = 0.9
    logical_split: bool = True
    record_merging: bool = True
    page_disposal: bool = True

    def __post_init__(self) -> None:
        if self.capacity < 4:
            raise ValueError("MVSBT needs page capacity >= 4")
        if not (0.0 < self.strong_factor <= 1.0):
            raise ValueError(
                f"strong factor must be in (0, 1], got {self.strong_factor}"
            )
        if self.strong_bound < 2:
            raise ValueError(
                f"floor(f*b) = {self.strong_bound} < 2: key splits could "
                "not guarantee fan-out 2"
            )
        if self.record_merging and not self.logical_split:
            raise ValueError(
                "record merging is defined for the logical (delta) value "
                "semantics of section 4.2.1; disable it in physical mode"
            )

    @property
    def strong_bound(self) -> int:
        """Maximum records in a freshly time-split page (``floor(f*b)``)."""
        return int(self.strong_factor * self.capacity)


@dataclass
class MVSBTCounters:
    """Operation counters for experiments and ablations."""

    insertions: int = 0
    noop_insertions: int = 0
    time_splits: int = 0
    key_splits: int = 0
    new_pages: int = 0
    disposals: int = 0
    time_merges: int = 0
    key_merges: int = 0
    records_created: int = 0


class MVSBT:
    """Partially persistent SB-tree over ``key_space`` x time.

    Parameters
    ----------
    pool:
        Buffer pool supplying pages.
    config:
        Capacity, strong factor and optimization toggles.
    key_space:
        Half-open key domain ``[lo, hi)``; inserts with ``k >= hi`` are
        empty quadrants (accepted as no-ops), ``k < lo`` covers everything.
    start_time:
        Birth instant of the initial (empty) root.
    paged_roots:
        Store root* as directory pages, charging the Theorem 2
        ``O(log_b n)`` root-lookup I/Os; default keeps the paper's
        "main-memory array" remark.
    """

    #: Observability hook set by :func:`repro.obs.attach_metrics`; a class
    #: attribute (not set in ``__init__``) because :meth:`restore` builds
    #: trees via ``cls.__new__``.
    metrics = None
    #: Optional :class:`repro.core.cache.PointMemo` set by
    #: :meth:`enable_memo`; class attribute for the same ``cls.__new__``
    #: reason, and so the unmemoized query path pays one ``is None`` check.
    memo = None
    #: Insertion epoch the memo validates open-frontier entries against;
    #: only bumped while a memo is attached.
    _memo_epoch = 0
    #: Active :class:`repro.mvsbt.buffered.MVSBTIngestBuffer` while a
    #: buffered-ingest window is open (see :meth:`begin_buffered`); a class
    #: attribute for the same ``cls.__new__`` reason as ``memo``.
    _buffer = None

    def __init__(self, pool: BufferPool, config: Optional[MVSBTConfig] = None,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 start_time: int = 1, paged_roots: bool = False) -> None:
        self.pool = pool
        self.config = config or MVSBTConfig()
        self.key_space = key_space
        self.counters = MVSBTCounters()
        self.roots = RootDirectory(pool=pool, paged=paged_roots)
        self.now = start_time
        self.start_time = start_time
        self._batch_depth = 0
        root = self._new_page(LEAF_KIND, key_space[0], key_space[1],
                              start_time, level=0)
        root.add(MVSBTLeafRecord(key_space[0], key_space[1], start_time,
                                 NOW, 0.0))
        self.roots.append(start_time, root.page_id)

    # -- public API -----------------------------------------------------------------

    @property
    def root_id(self) -> int:
        return self.roots.latest.root_id

    def begin_batch(self) -> None:
        """Enter batch-ingestion mode (nestable).

        While at least one batch window is open (and the tree runs the
        default logical value semantics), insertions route through a kernel
        that maintains each touched page's alive mirror *incrementally* and
        probes merge candidates in O(1), instead of rebuilding the mirror
        and scanning for merges on every event.  The resulting page contents
        are bit-identical to sequential insertion; only CPU work (and, via
        the pool's batch window, write scheduling) changes.
        """
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Leave batch-ingestion mode (one nesting level)."""
        if self._batch_depth <= 0:
            raise ValueError("end_batch() without matching begin_batch()")
        self._batch_depth -= 1

    def begin_buffered(self, intake_limit: Optional[int] = None,
                       pending_limit: Optional[int] = None):
        """Open a buffered-ingest window (buffer-tree path; not nestable).

        Insertions are absorbed by a root intake buffer and routed through
        columnar page kernels with per-leaf update buffers; queries cross a
        drain barrier that force-flushes only their search path.  Answers
        are identical to the direct path at every point of the window.
        Requires the logical (delta) value semantics.  Returns the
        attached :class:`~repro.mvsbt.buffered.MVSBTIngestBuffer`.
        """
        from repro.mvsbt.buffered import (
            DEFAULT_INTAKE_LIMIT,
            DEFAULT_PENDING_LIMIT,
            MVSBTIngestBuffer,
        )

        if self._buffer is not None:
            raise ValueError("begin_buffered() inside an open window")
        self._buffer = MVSBTIngestBuffer(
            self,
            intake_limit or DEFAULT_INTAKE_LIMIT,
            pending_limit or DEFAULT_PENDING_LIMIT,
        )
        # The window keeps its working set resident (pages touched by the
        # router are pinned until finalize); a pool batch window keeps the
        # victim scan amortized O(1) while the pool over-commits, and
        # coalesces the write-backs into the closing flush.
        self.pool.begin_batch()
        return self._buffer

    def end_buffered(self) -> None:
        """Close the buffered window: drain and flush every pending buffer.

        Frontier (alive) pages are restored to object records; historical
        pages written during the window stay columnar — the query descent
        and the page codecs read both representations.
        """
        if self._buffer is None:
            raise ValueError("end_buffered() without begin_buffered()")
        buffer = self._buffer
        self._buffer = None
        try:
            buffer.finalize()
        finally:
            self.pool.end_batch()

    def enable_memo(self, capacity: int = 8192,
                    thread_safe: bool = False) -> None:
        """Attach a point-query memo (see :mod:`repro.core.cache`).

        Entries for instants below the tree clock are version-pinned
        (immutable forever); entries at the open frontier are dropped when
        any later insertion bumps the memo epoch.
        """
        from repro.core.cache import PointMemo

        self.memo = PointMemo(capacity, thread_safe)

    def disable_memo(self) -> None:
        """Detach the memo, restoring the unmemoized query path."""
        self.memo = None

    def insert(self, key: int, t: int, value: float) -> None:
        """Add ``value`` to every point of ``[key, maxkey] x [t, maxtime]``.

        ``t`` must be non-decreasing across calls (transaction-time model).
        ``key`` at or above the key-space top is an empty quadrant (no-op);
        below the bottom it covers the whole key space.  Zero values are
        accepted and skipped (they change no point).
        """
        if self._buffer is not None:
            self._buffer.add(key, t, value)
            return
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("mvsbt.insert", key=key, t=t, value=value):
                self._insert(key, t, value)
            return
        self._insert(key, t, value)

    def _insert(self, key: int, t: int, value: float) -> None:
        """The four-phase insertion of Appendix A (see :meth:`insert`)."""
        if t < self.now:
            raise TimeOrderError(
                f"insertion at t={t} after the clock reached {self.now}"
            )
        self.now = t
        if key >= self.key_space[1] or value == 0:
            self.counters.noop_insertions += 1
            return
        key = max(key, self.key_space[0])
        self.counters.insertions += 1
        if self.memo is not None:
            # Any effective insertion may rewrite the open frontier; bump
            # the epoch so open-frontier memo entries read as stale.
            self._memo_epoch += 1

        # Phase 1 (Appendix A lines 1-8): follow partly-covered routers down.
        path: List[Page] = []
        routers: List[MVSBTIndexRecord] = []
        page = self.pool.fetch(self.root_id)
        while page.kind == INDEX_KIND:
            router = ops.find_partly_covered(page, key)
            if router is None:
                break
            path.append(page)
            routers.append(router)
            page = self.pool.fetch(router.child)

        # Phase 2 (lines 9-29): apply the insertion at the lowest page.
        batched = self._batch_depth > 0 and self.config.logical_split
        if batched:
            new_children = self._apply_at_lowest_batched(page, key, t, value)
        else:
            new_children = self._apply_at_lowest(page, key, t, value)

        # Phase 3 (lines 30-43): walk back up through the router pages.
        for parent, router in zip(reversed(path), reversed(routers)):
            if batched:
                new_children = self._apply_at_parent_batched(
                    parent, router, new_children, t, value)
            else:
                new_children = self._apply_at_parent(parent, router,
                                                     new_children, t, value)

        # Phase 4 (lines 44-47): install a new root if the old one split.
        if new_children:
            self._install_new_root(new_children, t)

    def query(self, key: int, t: int) -> float:
        """``V(key, t)`` — Appendix A's ``PointQuery``/``PagePointQuery``."""
        if self._buffer is not None:
            return self._buffer.query(key, t)
        if not (self.key_space[0] <= key < self.key_space[1]):
            raise QueryError(f"key {key} outside key space {self.key_space}")
        if t < self.start_time:
            return 0.0
        tracer = self.pool.tracer
        if self.memo is not None:
            return self._memoized_query(key, t,
                                        tracer if tracer.enabled else None)
        if tracer.enabled:
            with tracer.span("mvsbt.query", key=key, t=t):
                return self._descend(key, t, tracer)
        return self._descend(key, t, None)

    def _memoized_query(self, key: int, t: int, tracer) -> float:
        """:meth:`query` through the point memo (memo attached only).

        The epoch is read *before* the descent; if an insertion raced in
        between (no single-writer discipline at this layer), the entry is
        stored against the pre-descent epoch and a post-bump lookup drops
        it — stale values are never served.
        """
        epoch = self._memo_epoch
        hit = self.memo.get(key, t, epoch)
        if hit is not None:
            if tracer is not None:
                with tracer.span("mvsbt.query", key=key, t=t) as span:
                    span.attrs["memo"] = "hit"
            return hit[0]
        path: List[int] = []
        if tracer is not None:
            with tracer.span("mvsbt.query", key=key, t=t) as span:
                span.attrs["memo"] = "miss"
                value = self._descend(key, t, tracer, path)
        else:
            value = self._descend(key, t, None, path)
        self.memo.put(key, t, value, tuple(path),
                      closed=t < self.now, epoch=epoch)
        return value

    def query_batch(self, probes, stats=None) -> List[float]:
        """Answer many point queries in one frontier-ordered sweep.

        ``probes`` is a sequence of ``(key, t)`` pairs; the result list is
        byte-identical to ``[self.query(key, t) for key, t in probes]``.
        Identical probes are deduplicated per batch, the survivors are
        sorted into frontier order (key, then version), grouped by the
        root* entry owning their instant, and walked level by level so
        every page on any probe's descent path is fetched and decoded
        exactly once per batch.  Columnar pages are scanned through
        :meth:`~repro.mvsbt.columnar.ColumnarBlock.scan_many`; object
        pages through the matching multi-probe record walk.  Per-probe
        accumulation follows descent order with per-page contributions
        computed in record order, which makes each float sum bit-identical
        to the serial descent.

        With a :meth:`enable_memo` memo attached, hits are served from it
        and every value the sweep computes is put back with its descent
        path — the batch prefills the memo exactly as serial misses would.
        ``stats`` (a :class:`repro.core.batch.BatchScanStats`) receives
        the probe/page accounting when provided.
        """
        probes = list(probes)
        if self._buffer is not None:
            return [self._buffer.query(key, t) for key, t in probes]
        lo, hi = self.key_space
        for key, t in probes:
            if not (lo <= key < hi):
                raise QueryError(
                    f"key {key} outside key space {self.key_space}")
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("mvsbt.query_batch", probes=len(probes)):
                return self._sweep(probes, stats)
        return self._sweep(probes, stats)

    def _sweep(self, probes: List[Tuple[int, int]], stats) -> List[float]:
        """The batch traversal behind :meth:`query_batch` (validated input)."""
        n = len(probes)
        results: List[Optional[float]] = [None] * n
        memo = self.memo
        epoch = self._memo_epoch
        # Dedup identical (key, t) probes and resolve memo hits up front;
        # `fanout[slot]` lists every original probe index the slot answers.
        slots: dict = {}
        skeys: List[int] = []
        stimes: List[int] = []
        fanout: List[List[int]] = []
        for i, (key, t) in enumerate(probes):
            if t < self.start_time:
                results[i] = 0.0
                continue
            if memo is not None:
                hit = memo.get(key, t, epoch)
                if hit is not None:
                    results[i] = hit[0]
                    continue
            slot = slots.get((key, t))
            if slot is None:
                slot = len(skeys)
                slots[(key, t)] = slot
                skeys.append(key)
                stimes.append(t)
                fanout.append([i])
            else:
                fanout[slot].append(i)

        # Frontier order: key, then version — then bucket by the root*
        # entry owning each probe's instant, preserving that order.
        order = sorted(range(len(skeys)),
                       key=lambda s: (skeys[s], stimes[s]))
        frontiers: dict = {}
        for s in order:
            root_id = self.roots.find(stimes[s]).root_id
            frontiers.setdefault(root_id, []).append(s)

        values = [0.0] * len(skeys)
        depths = [0] * len(skeys)
        paths: Optional[List[List[int]]] = (
            [[] for _ in range(len(skeys))] if memo is not None else None)
        fetched = 0
        logical = self.config.logical_split
        for root_id, root_slots in frontiers.items():
            frontier = [(root_id, s) for s in root_slots]
            while frontier:
                # Group this level's probes by page, preserving frontier
                # order, so each page is fetched and decoded once.
                groups: dict = {}
                page_seq: List[int] = []
                for pid, s in frontier:
                    bucket = groups.get(pid)
                    if bucket is None:
                        groups[pid] = bucket = []
                        page_seq.append(pid)
                    bucket.append(s)
                frontier = []
                for pid in page_seq:
                    here = groups[pid]
                    page = self.pool.fetch(pid)
                    fetched += 1
                    if paths is not None:
                        for s in here:
                            paths[s].append(pid)
                    page_probes = [(skeys[s], stimes[s]) for s in here]
                    if page.records is None:
                        accs, rows = page.cache.scan_many(page_probes)
                        childs = page.cache.childs
                        leaf = page.kind == LEAF_KIND
                        for j, s in enumerate(here):
                            values[s] += accs[j]
                            depths[s] += 1
                            row = rows[j]
                            if row is None:
                                raise InvariantViolation(
                                    f"page {page.page_id} does not cover "
                                    f"key {skeys[s]} at t={stimes[s]}")
                            if not leaf:
                                frontier.append((childs[row], s))
                        continue
                    accs, conts = self._scan_page_many(page, page_probes,
                                                       logical)
                    leaf = page.kind == LEAF_KIND
                    for j, s in enumerate(here):
                        values[s] += accs[j]
                        depths[s] += 1
                        containing = conts[j]
                        if containing is None:
                            raise InvariantViolation(
                                f"page {page.page_id} does not cover key "
                                f"{skeys[s]} at t={stimes[s]}")
                        if not leaf:
                            frontier.append((containing.child, s))

        now = self.now
        for s in range(len(skeys)):
            if self.metrics is not None:
                self.metrics.descent_pages.observe(depths[s])
            if memo is not None:
                memo.put(skeys[s], stimes[s], values[s], tuple(paths[s]),
                         closed=stimes[s] < now, epoch=epoch)
            value = values[s]
            for i in fanout[s]:
                results[i] = value
        if stats is not None:
            swept = sum(len(f) for f in fanout)
            serial = sum(depths[s] * len(fanout[s])
                         for s in range(len(skeys)))
            stats.note_probes(n, swept - len(skeys), fetched,
                              serial - fetched)
        return results  # type: ignore[return-value]

    @staticmethod
    def _scan_page_many(page: Page, probes: List[Tuple[int, int]],
                        logical: bool
                        ) -> Tuple[List[float], List[Optional[object]]]:
        """Vectorized :meth:`_scan_page`: one record walk, many probes.

        The records are walked once in page order and every probe
        accumulates its matches in that order, keeping each probe's float
        sum bit-identical to its solo :meth:`_scan_page`.
        """
        n = len(probes)
        accs = [0.0] * n
        conts: List[Optional[object]] = [None] * n
        for rec in page.records:
            low, high = rec.low, rec.high
            start, end = rec.start, rec.end
            value = rec.value
            for p in range(n):
                key, t = probes[p]
                if not start <= t < end:
                    continue
                if logical:
                    if low <= key:
                        accs[p] += value
                if low <= key < high:
                    conts[p] = rec
        if not logical:
            for p in range(n):
                if conts[p] is not None:
                    accs[p] = conts[p].value
        return accs, conts

    def _descend(self, key: int, t: int, tracer,
                 path: Optional[List[int]] = None) -> float:
        """Root-to-leaf descent summing per-page contributions at ``t``.

        With a live ``tracer``, each page visit opens an ``mvsbt.page`` span
        around the fetch *and* the record scan, so per-level I/O deltas sum
        exactly to the whole query's I/O and CPU attribution follows the
        descent.
        """
        acc = 0.0
        logical = self.config.logical_split
        pid = self.roots.find(t).root_id
        pages = 0
        while True:
            if path is not None:
                path.append(pid)
            if tracer is not None:
                with tracer.span("mvsbt.page", page=pid) as span:
                    page = self.pool.fetch(pid)
                    span.attrs["level"] = page.meta["level"]
                    span.attrs["kind"] = page.kind
            else:
                page = self.pool.fetch(pid)
            if page.records is None:
                # Columnar page left behind by a buffered-ingest window
                # (block semantics are logical; buffered ingest requires
                # the logical value mode).
                delta, row = page.cache.scan(key, t)
                acc += delta
                pages += 1
                if row is None:
                    raise InvariantViolation(
                        f"page {page.page_id} does not cover key {key} "
                        f"at t={t}"
                    )
                if page.kind == LEAF_KIND:
                    if self.metrics is not None:
                        self.metrics.descent_pages.observe(pages)
                    return acc
                pid = page.cache.childs[row]
                continue
            delta, containing = self._scan_page(page, key, t, logical)
            acc += delta
            pages += 1
            if containing is None:
                raise InvariantViolation(
                    f"page {page.page_id} does not cover key {key} at t={t}"
                )
            if page.kind == LEAF_KIND:
                if self.metrics is not None:
                    self.metrics.descent_pages.observe(pages)
                return acc
            pid = containing.child

    @staticmethod
    def _scan_page(page: Page, key: int, t: int, logical: bool
                   ) -> Tuple[float, Optional[object]]:
        """One page's ``PagePointQuery`` step: contribution + next router.

        Logical mode sums every alive record with ``low <= key``; physical
        mode reads only the containing record's value.
        """
        acc = 0.0
        containing = None
        for rec in page.records:
            if not rec.alive_at(t):
                continue
            if logical:
                if rec.low <= key:
                    acc += rec.value
            if rec.low <= key < rec.high:
                containing = rec
        if not logical and containing is not None:
            acc = containing.value
        return acc, containing

    # -- insertion internals ------------------------------------------------------------

    def _apply_at_lowest(self, page: Page, key: int, t: int,
                         value: float) -> List[Page]:
        """Insert into the lowest page of the router path.

        The page is a leaf, or an index page where ``key`` falls on a record
        boundary (no partly-covered record).  Returns replacement pages if
        the page overflowed, else an empty list.
        """
        logical = self.config.logical_split
        partly = ops.find_partly_covered(page, key) \
            if page.kind == LEAF_KIND else None
        if partly is not None:
            boundary = partly.high  # before the split may shrink it in place
            upper_value = value if logical else partly.value + value
            upper = ops.horizontal_split_leaf(page, partly, key, t,
                                              upper_value)
            self.counters.records_created += 2
            self._merge_around(page, upper)
            if not logical:
                self._split_fully_covered(page, boundary, t, value)
        else:
            first = ops.find_first_fully_covered(page, key)
            assert first is not None, (
                f"page {page.page_id} has neither partly- nor fully-covered "
                f"record for key {key}"
            )
            fresh = ops.vertical_split(page, first, t, first.value + value)
            self.counters.records_created += 1
            self._merge_around(page, fresh)
            if not logical:
                self._split_fully_covered(page, fresh.high, t, value)
        if page.overflowed:
            return self._time_split(page, t)
        return []

    def _apply_at_parent(self, parent: Page, router: MVSBTIndexRecord,
                         new_children: List[Page], t: int,
                         value: float) -> List[Page]:
        """Bottom-up step at a page whose router was partly covered."""
        logical = self.config.logical_split
        boundary = router.high
        if new_children:
            # The routed child was time-split: retire the router and install
            # records for its replacements.  In logical mode the lowest new
            # router inherits the old router's value (the others carry 0) so
            # the page's prefix sums are unchanged; in physical mode each
            # carries the old router's full value.
            if router.start == t:
                parent.records.remove(router)
                parent.mark_dirty()
            else:
                router.end = t
                parent.mark_dirty()
            for position, child in enumerate(new_children):
                if logical:
                    inherited = router.value if position == 0 else 0.0
                else:
                    inherited = router.value
                rec = MVSBTIndexRecord(child.meta["low"], child.meta["high"],
                                       t, NOW, inherited, child.page_id)
                ops.append_record(parent, rec)
                self.counters.records_created += 1
                self._merge_around(parent, rec)
        if logical:
            successor = ops.find_successor(parent, boundary)
            if successor is not None:
                fresh = ops.vertical_split(parent, successor, t,
                                           successor.value + value)
                self.counters.records_created += 1
                self._merge_around(parent, fresh)
        else:
            self._split_fully_covered(parent, boundary, t, value)
        if parent.overflowed:
            return self._time_split(parent, t)
        return []

    # -- batch-mode kernel --------------------------------------------------------------
    #
    # The batched methods replay the exact record-level mutation sequence of
    # their reference counterparts (same records, same page.records order,
    # same counters) but keep each page's alive mirror valid incrementally
    # and probe merge candidates in O(1).  Property 1 tiling makes every
    # sought record unique, which is what licenses the bisect/neighbour
    # lookups below; the metamorphic tests enforce the equivalence.

    def _apply_at_lowest_batched(self, page: Page, key: int, t: int,
                                 value: float) -> List[Page]:
        """Batch-mode :meth:`_apply_at_lowest` (logical semantics only)."""
        m = ops.mirror(page)
        partly = None
        i = -1
        if page.kind == LEAF_KIND:
            i = bisect_right(m.lows, key) - 1
            if i >= 0:
                rec = m.alive[i]
                if rec.low < key < rec.high:
                    partly = rec
        if partly is not None:
            # Inline horizontal_split_leaf with mirror maintenance.
            if partly.start == t:
                upper = MVSBTLeafRecord(key, partly.high, t, NOW, value)
                partly.high = key
                page.records.append(upper)
                page.mark_dirty()
                m.alive.insert(i + 1, upper)
                m.lows.insert(i + 1, key)
            else:
                partly.end = t
                if m.closes is not None:
                    m.closes[(partly.low, partly.high)] = partly
                lower = MVSBTLeafRecord(partly.low, key, t, NOW, partly.value)
                upper = MVSBTLeafRecord(key, partly.high, t, NOW, value)
                page.records.append(lower)
                page.records.append(upper)
                page.mark_dirty()
                m.alive[i] = lower
                m.alive.insert(i + 1, upper)
                m.lows.insert(i + 1, key)
            self.counters.records_created += 2
            fresh, idx = upper, i + 1
        else:
            j = bisect_left(m.lows, key)
            assert j < len(m.alive), (
                f"page {page.page_id} has neither partly- nor fully-covered "
                f"record for key {key}"
            )
            fresh, idx = self._vertical_split_batched(page, m, j, t, value)
            self.counters.records_created += 1
        self._merge_around_batched(page, m, fresh, idx)
        m.version = page.version
        if page.overflowed:
            return self._time_split(page, t)
        return []

    def _apply_at_parent_batched(self, parent: Page,
                                 router: MVSBTIndexRecord,
                                 new_children: List[Page], t: int,
                                 value: float) -> List[Page]:
        """Batch-mode :meth:`_apply_at_parent` (logical semantics only).

        The rare child-was-split case delegates to the reference method;
        its mutations bump ``Page.version`` so the mirror self-invalidates.
        """
        if new_children:
            return self._apply_at_parent(parent, router, new_children, t,
                                         value)
        m = ops.mirror(parent)
        boundary = router.high
        j = bisect_left(m.lows, boundary)
        if j < len(m.alive) and m.alive[j].low == boundary:
            fresh, idx = self._vertical_split_batched(parent, m, j, t, value)
            self.counters.records_created += 1
            self._merge_around_batched(parent, m, fresh, idx)
            m.version = parent.version
        if parent.overflowed:
            return self._time_split(parent, t)
        return []

    def _vertical_split_batched(self, page: Page, m, j: int, t: int,
                                value: float):
        """Vertically split the alive record at mirror slot ``j``, adding
        ``value`` to its successor's value; returns ``(alive_record, slot)``."""
        record = m.alive[j]
        new_value = record.value + value
        if record.start == t:
            record.value = new_value
            page.mark_dirty()
            return record, j
        record.end = t
        if m.closes is not None:
            m.closes[(record.low, record.high)] = record
        fresh = ops.clone(record, t)
        fresh.value = new_value
        page.records.append(fresh)
        page.mark_dirty()
        m.alive[j] = fresh
        return fresh, j

    def _merge_around_batched(self, page: Page, m, record, idx: int) -> None:
        """Batch-mode :meth:`_merge_around` with O(1) candidate probing.

        Time merge: the only possible partner is the latest-closed dead
        record with ``record``'s exact range (``record.start == now``, and
        two same-range records cannot both die at one instant without
        having violated tiling), which the mirror's ``closes`` map yields
        directly.  Key merge: tiling makes the mergeable lower/upper
        neighbours exactly the mirror-adjacent alive records.
        """
        if not self.config.record_merging:
            return
        if m.closes is None:
            closes = {}
            for rec in page.records:
                if rec.alive:
                    continue
                key_range = (rec.low, rec.high)
                cur = closes.get(key_range)
                if cur is None or rec.end > cur.end:
                    closes[key_range] = rec
            m.closes = closes
        cand = m.closes.get((record.low, record.high))
        if (cand is not None and cand.end == record.start
                and cand.value == record.value
                and getattr(cand, "child", None)
                == getattr(record, "child", None)):
            page.records.remove(record)
            cand.end = NOW
            page.mark_dirty()
            del m.closes[(record.low, record.high)]
            m.alive[idx] = cand
            self.counters.time_merges += 1
            record = cand
        if page.kind != LEAF_KIND:
            return
        merged = False
        if record.value == 0 and idx > 0:
            lower = m.alive[idx - 1]
            if lower.high == record.low and lower.start == record.start:
                lower.high = record.high
                page.records.remove(record)
                page.mark_dirty()
                del m.alive[idx]
                del m.lows[idx]
                idx -= 1
                record = lower
                merged = True
        if idx + 1 < len(m.alive):
            upper = m.alive[idx + 1]
            if (upper.value == 0 and upper.low == record.high
                    and upper.start == record.start):
                record.high = upper.high
                page.records.remove(upper)
                page.mark_dirty()
                del m.alive[idx + 1]
                del m.lows[idx + 1]
                merged = True
        if merged:
            self.counters.key_merges += 1

    def _split_fully_covered(self, page: Page, from_key: int, t: int,
                             value: float) -> None:
        """Physical mode: vertically split every alive record with
        ``low >= from_key``, adding ``value`` to each copy."""
        for rec in [r for r in page.records if r.alive and r.low >= from_key]:
            ops.vertical_split(page, rec, t, rec.value + value)
            self.counters.records_created += 1

    def _time_split(self, page: Page, t: int) -> List[Page]:
        """Copy alive records to fresh page(s); key split on strong overflow.

        Returns the replacement pages.  The dead page keeps only records
        born before ``t`` (records born at ``t`` have an empty window here)
        and is disposed of entirely when its own lifespan is empty.
        """
        cfg = self.config
        self.counters.time_splits += 1
        buffer = [ops.clone(rec, t) for rec in ops.alive_records(page)]
        page.meta["death"] = t
        ops.prune_born_at(page, t)

        chunks: List[List] = []
        if len(buffer) > cfg.strong_bound:
            self.counters.key_splits += 1
            pieces = -(-len(buffer) // cfg.strong_bound)  # ceil division
            base, extra = divmod(len(buffer), pieces)
            cursor = 0
            for i in range(pieces):
                size = base + (1 if i < extra else 0)
                chunks.append(buffer[cursor:cursor + size])
                cursor += size
            if cfg.logical_split:
                # Section 4.2.1: each higher page's lowest record absorbs
                # the prefix sum of all lower pages' original values.
                originals = [sum(rec.value for rec in chunk)
                             for chunk in chunks]
                cumulative = 0.0
                for i, chunk in enumerate(chunks):
                    if i > 0:
                        chunk[0].value += cumulative
                    cumulative += originals[i]
        else:
            chunks.append(buffer)

        level = page.meta["level"]
        new_pages: List[Page] = []
        for chunk in chunks:
            fresh = self._new_page(page.kind, chunk[0].low, chunk[-1].high,
                                   t, level)
            fresh.records = chunk
            fresh.meta["born_count"] = len(chunk)
            fresh.mark_dirty()
            new_pages.append(fresh)
            self.counters.records_created += len(chunk)

        if cfg.page_disposal and page.meta["birth"] == t:
            self.pool.free(page.page_id)
            self.counters.disposals += 1
        return new_pages

    def _install_new_root(self, new_children: List[Page], t: int) -> None:
        if len(new_children) == 1:
            self.roots.append(t, new_children[0].page_id)
            return
        level = new_children[0].meta["level"] + 1
        root = self._new_page(INDEX_KIND, self.key_space[0],
                              self.key_space[1], t, level)
        for child in new_children:
            root.add(MVSBTIndexRecord(child.meta["low"], child.meta["high"],
                                      t, NOW, 0.0, child.page_id))
            self.counters.records_created += 1
        self.roots.append(t, root.page_id)

    def _merge_around(self, page: Page, record) -> None:
        """Apply section 4.2.2 record merging around a fresh/updated record."""
        if not self.config.record_merging:
            return
        survivor = ops.try_time_merge(page, record)
        if survivor is not None:
            self.counters.time_merges += 1
            record = survivor
        if page.kind == LEAF_KIND:
            if ops.try_key_merge(page, record) is not None:
                self.counters.key_merges += 1

    def _new_page(self, kind: str, low: int, high: int, birth: int,
                  level: int) -> Page:
        page = self.pool.allocate(self.config.capacity, kind)
        page.meta.update(low=low, high=high, birth=birth, death=NOW,
                         level=level)
        self.counters.new_pages += 1
        return page

    # -- persistence -------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-safe structural state (pages live in the pool's disk)."""
        from dataclasses import asdict

        return {
            "type": "mvsbt",
            "config": asdict(self.config),
            "key_space": list(self.key_space),
            "start_time": self.start_time,
            "now": self.now,
            "roots": [[e.start, e.root_id] for e in self.roots.entries()],
            "counters": asdict(self.counters),
        }

    @classmethod
    def restore(cls, pool: BufferPool, state: dict) -> "MVSBT":
        """Rebuild a tree over a pool restored from a checkpoint.

        root* is restored in its in-memory form (paged mode is a query-cost
        accounting device, not extra state).
        """
        tree = cls.__new__(cls)
        tree.pool = pool
        tree.config = MVSBTConfig(**state["config"])
        tree.key_space = tuple(state["key_space"])
        tree.start_time = state["start_time"]
        tree.now = state["now"]
        tree.counters = MVSBTCounters(**state["counters"])
        tree._batch_depth = 0
        tree.roots = RootDirectory()
        for start, root_id in state["roots"]:
            tree.roots.append(start, root_id)
        return tree

    def save(self, directory: str) -> None:
        """Checkpoint the tree (pages + structure) into ``directory``."""
        from repro.storage.checkpoint import write_checkpoint

        if self._buffer is not None:
            # Pending leaf updates must land in the page images; columnar
            # pages themselves checkpoint fine (encode_page_image).
            self._buffer.flush_all_pending()
        write_checkpoint(self.pool, self.state(), directory)

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64) -> "MVSBT":
        """Reopen a tree from a checkpoint written by :meth:`save`."""
        from repro.storage.checkpoint import read_checkpoint

        pool, state = read_checkpoint(directory, buffer_pages)
        if state.get("type") != "mvsbt":
            raise ValueError(
                f"checkpoint holds a {state.get('type')!r}, not an MVSBT"
            )
        return cls.restore(pool, state)

    # -- introspection & invariants ----------------------------------------------------

    def page_ids(self) -> set[int]:
        """Every page reachable from any registered root."""
        if self._buffer is not None:
            # The intake may still hold updates whose routing allocates
            # pages; the per-leaf pending buffers cannot (the deposit
            # guard proves their flush never splits).
            self._buffer.drain()
        seen: set[int] = set()
        for entry in self.roots.entries():
            stack = [entry.root_id]
            while stack:
                pid = stack.pop()
                if pid in seen:
                    continue
                seen.add(pid)
                page = self.pool.fetch(pid)
                if page.kind == INDEX_KIND:
                    if page.records is None:
                        block = page.cache
                        starts, ends = block.starts, block.ends
                        childs = block.childs
                        stack.extend(childs[r] for r in range(len(childs))
                                     if starts[r] != ends[r])
                    else:
                        stack.extend(rec.child for rec in page.records)
        return seen

    def page_count(self) -> int:
        """Reachable pages plus paged-root* pages — the space metric."""
        return len(self.page_ids()) + self.roots.page_count

    def height(self) -> int:
        """Levels of the latest version's tree (1 = root is a leaf)."""
        return self.pool.fetch(self.root_id).meta["level"] + 1

    def check_invariants(self) -> None:
        """Structural audit; raises ``AssertionError`` on the first failure.

        Checks physical capacity, Property 1 tiling at every critical
        instant, the strong condition at page birth, router/child metadata
        agreement, and (when record merging never fired) the Lemma 3
        alive-count lower bound for non-root pages.
        """
        cfg = self.config
        ever_roots = {entry.root_id for entry in self.roots.entries()}
        check_lemma3 = (self.counters.time_merges == 0
                        and self.counters.key_merges == 0)
        lemma3_bound = -(-cfg.strong_bound // 2)  # ceil(f*b / 2)
        for pid in self.page_ids():
            page = self.pool.fetch(pid)
            if page.records is None:
                materialize_page(page)
            assert len(page.records) <= cfg.capacity, (
                f"page {pid} holds {len(page.records)} > b={cfg.capacity}"
            )
            birth, death = page.meta["birth"], page.meta["death"]
            # Records appended later at the birth instant are legitimate;
            # the strong condition constrains the time-split copy itself.
            born_here = page.meta.get("born_count", 1)
            if pid not in ever_roots:
                assert born_here <= cfg.strong_bound, (
                    f"page {pid} born with {born_here} records > "
                    f"f*b={cfg.strong_bound}"
                )
            instants = {birth}
            for rec in page.records:
                if birth <= rec.start < death:
                    instants.add(rec.start)
                if birth < rec.end < death:
                    instants.add(rec.end)
            for t in instants:
                problem = ops.check_tiling_at(page, t)
                assert problem is None, problem
                if check_lemma3 and pid not in ever_roots:
                    alive = sum(1 for r in page.records if r.alive_at(t))
                    assert alive >= min(lemma3_bound, born_here), (
                        f"page {pid} at t={t}: {alive} alive records "
                        f"below the Lemma 3 bound"
                    )
            if page.kind == INDEX_KIND:
                for rec in page.records:
                    child = self.pool.fetch(rec.child)
                    assert child.meta["low"] == rec.low \
                        and child.meta["high"] == rec.high, (
                            f"router range mismatch {pid} -> {rec.child}"
                        )
                    assert child.meta["level"] == page.meta["level"] - 1, (
                        f"level mismatch {pid} -> {rec.child}"
                    )
