"""Columnar page blocks for the buffered MVSBT ingestion path.

During a buffered-ingest window (see :mod:`repro.mvsbt.buffered`) every
page touched by the router descent is *sealed*: its per-record objects are
exploded into parallel scalar arrays held in a :class:`ColumnarBlock`
parked in ``Page.cache``, and ``Page.records`` is set to ``None`` so any
code path that was not taught about the window fails loudly instead of
reading half a page.  The block is the page — same rectangles, same
record order — just stored column-major so the hot ingest kernels touch
plain ints and floats instead of dataclass instances.

Two representation details the kernels rely on:

* **Tombstones.**  Rows are never physically deleted (later rows are
  referenced by index from the alive list and the closes map), so a
  removal sets ``ends[i] = starts[i]``.  An empty interval can never be
  observed (``alive_at`` is ``start <= t < end``), is excluded from the
  closes map, and is dropped on materialization — exactly mirroring the
  physical ``records.remove`` of the object kernels, including record
  order, because surviving rows keep their positions.
* **Alive index.**  ``alive`` holds the row indices of the alive records
  sorted by ``low`` (Property 1 tiling makes the lows strictly
  increasing) with ``alive_lows`` the parallel bisect key list — the
  columnar twin of :class:`repro.mvsbt.pageops._AliveMirror`, maintained
  incrementally instead of being version-validated.

``pending`` is the leaf-level update buffer of the buffer-tree design:
deposited ``(key, t, value)`` triples waiting for their amortized apply.
Interior blocks never buffer (their mutations are applied on arrival, see
the module docstring of :mod:`repro.mvsbt.buffered` for why).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.model import NOW
from repro.mvsbt.records import (
    LEAF_KIND,
    MVSBTIndexRecord,
    MVSBTLeafRecord,
)
from repro.storage.page import Page


class ColumnarBlock:
    """One page's records as struct-of-arrays plus derived ingest state."""

    __slots__ = (
        "leaf",
        "lows",
        "highs",
        "starts",
        "ends",
        "values",
        "childs",
        "alive",
        "alive_lows",
        "closes",
        "pending",
        "count",
    )

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.lows: List[int] = []
        self.highs: List[int] = []
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.values: List[float] = []
        #: Child page ids; ``None`` for leaf blocks.
        self.childs: Optional[List[int]] = None if leaf else []
        #: Row indices of alive records, sorted by ``low``.
        self.alive: List[int] = []
        #: ``lows[row]`` for each alive row (the bisect key list).
        self.alive_lows: List[int] = []
        #: Lazily built ``(low, high) -> row`` map of the latest-closed
        #: dead record per key range (time-merge candidate probing).
        self.closes: Optional[Dict[Tuple[int, int], int]] = None
        #: Leaf update buffer: deposited ``(key, t, value)`` triples.
        self.pending: List[Tuple[int, int, float]] = []
        #: Physical (non-tombstone) row count — the overflow metric,
        #: equal to ``len(page.records)`` of the object representation.
        self.count = 0

    # -- conversion --------------------------------------------------------------

    @classmethod
    def from_page(cls, page: Page) -> "ColumnarBlock":
        """Explode ``page.records`` into a block (record order preserved)."""
        block = cls(page.kind == LEAF_KIND)
        lows, highs = block.lows, block.highs
        starts, ends, values = block.starts, block.ends, block.values
        childs = block.childs
        for rec in page.records:
            lows.append(rec.low)
            highs.append(rec.high)
            starts.append(rec.start)
            ends.append(rec.end)
            values.append(rec.value)
            if childs is not None:
                childs.append(rec.child)
        block.count = len(lows)
        block.rebuild_alive()
        return block

    def rebuild_alive(self) -> None:
        """Recompute the alive index from the arrays (seal/prune time)."""
        ends, lows = self.ends, self.lows
        rows = sorted(
            (r for r in range(len(ends)) if ends[r] == NOW),
            key=lows.__getitem__,
        )
        self.alive = rows
        self.alive_lows = [lows[r] for r in rows]

    def to_records(self) -> list:
        """Rebuild the object-record list, dropping tombstoned rows.

        Surviving rows keep their relative order, so the result matches
        what the object kernels' physical appends/removals would have
        produced for the same mutation sequence.
        """
        lows, highs = self.lows, self.highs
        starts, ends, values = self.starts, self.ends, self.values
        childs = self.childs
        records: list = []
        if childs is None:
            for r in range(len(lows)):
                if starts[r] != ends[r]:
                    records.append(MVSBTLeafRecord(
                        lows[r], highs[r], starts[r], ends[r], values[r]))
        else:
            for r in range(len(lows)):
                if starts[r] != ends[r]:
                    records.append(MVSBTIndexRecord(
                        lows[r], highs[r], starts[r], ends[r], values[r],
                        childs[r]))
        return records

    def to_rows(self) -> Tuple[int, list]:
        """Codec-ordered flat field list of the non-tombstone rows.

        Returns ``(count, flat)`` where ``flat`` is every surviving row's
        fields concatenated in the page codec's field order — the input
        :func:`repro.storage.serialization.encode_page_flat` turns into a
        page image with one bulk ``struct.pack`` instead of a per-record
        encode loop.  Byte-identical to encoding :meth:`to_records`.
        """
        lows, highs = self.lows, self.highs
        starts, ends, values = self.starts, self.ends, self.values
        childs = self.childs
        flat: list = []
        extend = flat.extend
        count = 0
        if childs is None:
            for r in range(len(lows)):
                if starts[r] != ends[r]:
                    extend((lows[r], highs[r], starts[r], ends[r],
                            values[r]))
                    count += 1
        else:
            for r in range(len(lows)):
                if starts[r] != ends[r]:
                    extend((lows[r], highs[r], starts[r], ends[r],
                            values[r], childs[r]))
                    count += 1
        return count, flat

    # -- row primitives -----------------------------------------------------------

    def append_row(self, low: int, high: int, start: int, end: int,
                   value: float, child: int = -1) -> int:
        """Append one record row; returns its index."""
        self.lows.append(low)
        self.highs.append(high)
        self.starts.append(start)
        self.ends.append(end)
        self.values.append(value)
        if self.childs is not None:
            self.childs.append(child)
        self.count += 1
        return len(self.lows) - 1

    def tombstone(self, row: int) -> None:
        """Logically remove ``row`` (the columnar ``records.remove``)."""
        self.ends[row] = self.starts[row]
        self.count -= 1

    def build_closes(self) -> Dict[Tuple[int, int], int]:
        """(Re)build and memoize the latest-closed-dead-row map."""
        closes: Dict[Tuple[int, int], int] = {}
        lows, highs = self.lows, self.highs
        starts, ends = self.starts, self.ends
        for r in range(len(ends)):
            e = ends[r]
            if e == NOW or starts[r] == e:
                continue
            key_range = (lows[r], highs[r])
            cur = closes.get(key_range)
            if cur is None or e > ends[cur]:
                closes[key_range] = r
        self.closes = closes
        return closes

    def scan(self, key: int, t: int) -> Tuple[float, Optional[int]]:
        """``PagePointQuery`` over the arrays (logical mode).

        Returns the page's contribution at ``(key, t)`` and the row index
        of the containing record (``None`` breaks tiling upstream).
        Tombstones fail the aliveness test by construction.
        """
        acc = 0.0
        containing: Optional[int] = None
        lows, highs = self.lows, self.highs
        starts, ends, values = self.starts, self.ends, self.values
        for r in range(len(lows)):
            if starts[r] <= t < ends[r]:
                low = lows[r]
                if low <= key:
                    acc += values[r]
                    if key < highs[r]:
                        containing = r
        return acc, containing

    def scan_many(self, probes: List[Tuple[int, int]]
                  ) -> Tuple[List[float], List[Optional[int]]]:
        """Vectorized :meth:`scan`: many probes in one pass over the rows.

        ``probes`` is a list of ``(key, t)`` pairs.  Returns the parallel
        lists of per-probe contributions and containing-row indices.  The
        rows are walked once in record order and every probe accumulates
        its matches in that same order, so each probe's float sum is
        bit-identical to calling :meth:`scan` for it alone — the batch
        sweep's byte-identity guarantee rests on this.
        """
        n = len(probes)
        accs = [0.0] * n
        rows: List[Optional[int]] = [None] * n
        lows, highs = self.lows, self.highs
        starts, ends, values = self.starts, self.ends, self.values
        for r in range(len(lows)):
            start, end = starts[r], ends[r]
            low, high, value = lows[r], highs[r], values[r]
            for p in range(n):
                key, t = probes[p]
                if start <= t < end and low <= key:
                    accs[p] += value
                    if key < high:
                        rows[p] = r
        return accs, rows


def seal_page(page: Page) -> ColumnarBlock:
    """Convert ``page`` to columnar representation (idempotent).

    ``page.records`` becomes ``None`` — any unguarded object-path access
    during the window raises immediately instead of misreading the page.
    """
    block = page.cache
    if type(block) is ColumnarBlock:
        return block
    block = ColumnarBlock.from_page(page)
    page.cache = block
    page.records = None
    return block


def materialize_page(page: Page) -> None:
    """Restore ``page`` to the object-record representation."""
    block = page.cache
    if type(block) is not ColumnarBlock:
        return
    page.records = block.to_records()
    page.cache = None
    page.mark_dirty()
