"""Shared accounting for the vectorized batch-query path.

One :class:`BatchScanStats` instance rides along a warehouse (thread
backend) or a procpool worker (process backend) and is fed by every
layer of the batch read stack: :meth:`repro.mvsbt.tree.MVSBT.query_batch`
credits probe/page numbers, :meth:`repro.core.warehouse.TemporalWarehouse.
aggregate_batch` credits batch sizes, and the MVCC batch section of
:class:`repro.serve.sharded.ShardedWarehouse` credits its once-per-batch
epoch validations and per-query fallbacks.  The server publishes the
snapshot as ``repro_batchscan_*`` gauges on ``/metrics``.

The counters answer the honesty questions of the batch kernel:

* ``pages_saved`` — page fetch+decodes the sweep avoided versus issuing
  every probe as an independent root-to-leaf descent (the headline win).
* ``probes_deduped`` — identical ``(key, t)`` probes collapsed per batch.
* ``epoch_validations`` / ``epoch_fallbacks`` — seqlock hops taken per
  batch; the bench asserts exactly one validation per batch and zero
  fallbacks in the happy path.
"""

from __future__ import annotations

import threading
from typing import Dict


class BatchScanStats:
    """Thread-safe counters for the batch-sweep read path."""

    __slots__ = ("_lock", "batches", "batched_queries", "probes",
                 "probes_deduped", "pages_fetched", "pages_saved",
                 "epoch_validations", "epoch_fallbacks", "max_batch")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Sweeps executed (one ``aggregate_batch`` call each).
        self.batches = 0
        #: Queries answered through sweeps (sum of batch sizes).
        self.batched_queries = 0
        #: Theorem-1 boundary probes presented to ``query_batch``.
        self.probes = 0
        #: Probes collapsed by per-batch (key, t) dedup.
        self.probes_deduped = 0
        #: Pages actually fetched+decoded by sweeps.
        self.pages_fetched = 0
        #: Fetches avoided versus one descent per (possibly duplicate) probe.
        self.pages_saved = 0
        #: Seqlock validations performed for whole batches (one per batch
        #: on the optimistic path).
        self.epoch_validations = 0
        #: Queries that fell back to a per-query locked read after the
        #: batch validation tore.
        self.epoch_fallbacks = 0
        #: Largest batch observed (gauge, not a counter).
        self.max_batch = 0

    def note_batch(self, queries: int) -> None:
        """Count one sweep answering ``queries`` queries."""
        with self._lock:
            self.batches += 1
            self.batched_queries += queries
            if queries > self.max_batch:
                self.max_batch = queries

    def note_probes(self, probes: int, deduped: int,
                    fetched: int, saved: int) -> None:
        """Credit one tree sweep's probe and page accounting."""
        with self._lock:
            self.probes += probes
            self.probes_deduped += deduped
            self.pages_fetched += fetched
            self.pages_saved += saved

    def note_epoch_validation(self) -> None:
        """Count one whole-batch seqlock validation."""
        with self._lock:
            self.epoch_validations += 1

    def note_epoch_fallback(self, queries: int = 1) -> None:
        """Count ``queries`` queries that took the per-query fallback."""
        with self._lock:
            self.epoch_fallbacks += queries

    def as_dict(self) -> Dict[str, int]:
        """A consistent snapshot of every counter."""
        with self._lock:
            return {
                "batches": self.batches,
                "batched_queries": self.batched_queries,
                "probes": self.probes,
                "probes_deduped": self.probes_deduped,
                "pages_fetched": self.pages_fetched,
                "pages_saved": self.pages_saved,
                "epoch_validations": self.epoch_validations,
                "epoch_fallbacks": self.epoch_fallbacks,
                "max_batch": self.max_batch,
            }

    def merge(self, other: Dict[str, int]) -> None:
        """Fold another snapshot into this one (gather across workers)."""
        with self._lock:
            self.batches += other.get("batches", 0)
            self.batched_queries += other.get("batched_queries", 0)
            self.probes += other.get("probes", 0)
            self.probes_deduped += other.get("probes_deduped", 0)
            self.pages_fetched += other.get("pages_fetched", 0)
            self.pages_saved += other.get("pages_saved", 0)
            self.epoch_validations += other.get("epoch_validations", 0)
            self.epoch_fallbacks += other.get("epoch_fallbacks", 0)
            self.max_batch = max(self.max_batch, other.get("max_batch", 0))
