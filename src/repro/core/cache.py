"""Version-pinned read-path caches, correct by construction.

The transaction-time model makes caching unusually easy to get right:
updates arrive with non-decreasing timestamps, so every version strictly
before the current clock is **closed** — immutable forever.  The two
caches here exploit that single fact at two granularities:

* :class:`ResultCache` memoizes whole aggregate answers at the warehouse
  layer, keyed ``(aggregate, key_range, interval)``.  A query whose
  interval ends at or before the warehouse clock only touches closed
  versions, so its answer can be cached *forever* (bounded only by LRU
  capacity).  A query whose interval reaches the open present is cached
  too, but tagged with the warehouse's **write epoch**; the single-writer
  update path bumps the epoch, so a stale open-present entry is detected
  (and dropped) at lookup time, never served.

* :class:`PointMemo` memoizes MVSBT point queries ``V(key, t)`` — the
  paper's six-probe reduction repeats boundary probes across overlapping
  rectangles, and every probe at ``t`` below the tree clock is a closed
  version.  The memo also records the root-to-leaf descent path, so
  EXPLAIN can report how many page visits a hit short-circuited.

Both caches are **opt-in** and *absent by default*: an unconfigured
warehouse holds ``None`` and pays one attribute check on the query path,
which is what keeps the twin-run trace-invariance tests byte-identical
with caching off.  Under the multi-reader server they are constructed
``thread_safe=True``, which guards the LRU bookkeeping with a mutex
(readers share the shard read lock, so they do race each other).

Why results cannot go stale — the two-line proof the tests enforce:
an update at time ``t'`` only changes the value surface at instants
``>= t'``, and the clock guarantees ``t' >= now``; a closed entry only
aggregates instants ``< now <= t'``, so no update can touch it.  Open
entries make no such claim and are invalidated wholesale by the epoch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

#: Marker epoch for entries over closed intervals: valid forever.
_CLOSED = -1

#: Per-thread deferred-store state for optimistic (seqlock) readers.  A
#: torn optimistic read must never publish into a shared cache: a closed
#: entry is pinned *forever*, so one poisoned store would serve wrong
#: answers until eviction.  While a thread is inside an optimistic read
#: section every ``_VersionedLRU.store`` is parked here instead of
#: applied; the reader commits the parked stores only after its epoch
#: validation proves the traversal was untorn, or discards them.
_deferred = threading.local()


def begin_deferred_stores() -> None:
    """Park this thread's cache stores until commit/discard (re-entrant
    per thread only in the sense that the latest call wins — optimistic
    read sections do not nest)."""
    _deferred.pending = []


def commit_deferred_stores() -> None:
    """Apply the parked stores — call only after epoch validation."""
    pending = getattr(_deferred, "pending", None)
    _deferred.pending = None
    if pending:
        for lru, key, value, closed, epoch, extra in pending:
            lru.store(key, value, closed=closed, epoch=epoch, extra=extra)


def discard_deferred_stores() -> None:
    """Drop the parked stores — the optimistic read was torn or failed."""
    _deferred.pending = None


def in_deferred_section() -> bool:
    """True while this thread parks its stores (optimistic read open)."""
    return getattr(_deferred, "pending", None) is not None


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for the layered read-path cache.

    ``result_entries`` bounds the warehouse-level :class:`ResultCache`,
    ``memo_entries`` bounds each MVSBT's :class:`PointMemo` (two trees
    per maintained aggregate).  Zero disables the respective layer.
    """

    result_entries: int = 4096
    memo_entries: int = 8192

    def __post_init__(self) -> None:
        if self.result_entries < 0 or self.memo_entries < 0:
            raise ValueError("cache capacities must be non-negative")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters one cache instance maintains."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale_drops: int = 0
    #: Page visits a memo hit avoided (descent length at store time).
    pages_saved: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (metrics export, snapshots)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "pages_saved": self.pages_saved,
        }

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before any traffic."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _VersionedLRU:
    """LRU map of ``key -> (value, epoch, extra)`` with epoch validation.

    Entries stored with the :data:`_CLOSED` epoch never expire; any other
    epoch must match the caller's current epoch at lookup or the entry is
    dropped as stale.  All methods are O(1); the optional mutex makes the
    structure safe under the server's concurrent readers.
    """

    __slots__ = ("capacity", "stats", "_entries", "_lock")

    def __init__(self, capacity: int, thread_safe: bool = False) -> None:
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[Any, int, Any]]" = \
            OrderedDict()
        self._lock: Optional[threading.Lock] = \
            threading.Lock() if thread_safe else None

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, epoch: int) -> Optional[Tuple[Any, Any]]:
        """``(value, extra)`` when fresh, else ``None`` (stats updated)."""
        lock = self._lock
        if lock is None:
            return self._lookup(key, epoch)
        with lock:
            return self._lookup(key, epoch)

    def _lookup(self, key: Hashable, epoch: int) -> Optional[Tuple[Any, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        value, stored_epoch, extra = entry
        if stored_epoch != _CLOSED and stored_epoch != epoch:
            del self._entries[key]
            self.stats.stale_drops += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value, extra

    def peek(self, key: Hashable, epoch: int) -> bool:
        """Would :meth:`lookup` hit?  No stats, no recency, no drops."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        stored_epoch = entry[1]
        return stored_epoch == _CLOSED or stored_epoch == epoch

    def store(self, key: Hashable, value: Any, *, closed: bool, epoch: int,
              extra: Any = None) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full.

        Inside an optimistic read section (see
        :func:`begin_deferred_stores`) the store is parked thread-locally
        and only lands if the reader's epoch validation later commits it
        — lookups keep reading the shared map directly, which is safe
        because they can only observe *committed* entries.
        """
        if self.capacity <= 0:
            return
        pending = getattr(_deferred, "pending", None)
        if pending is not None:
            pending.append((self, key, value, closed, epoch, extra))
            return
        lock = self._lock
        if lock is None:
            return self._store(key, value, closed, epoch, extra)
        with lock:
            return self._store(key, value, closed, epoch, extra)

    def _store(self, key: Hashable, value: Any, closed: bool, epoch: int,
               extra: Any) -> None:
        self._entries[key] = (value, _CLOSED if closed else epoch, extra)
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (used by tests and explicit resets)."""
        lock = self._lock
        if lock is None:
            self._entries.clear()
            return
        with lock:
            self._entries.clear()


class ResultCache:
    """Warehouse-level cache of whole aggregate answers.

    Keys are ``(aggregate name, key_range, interval)`` — both model types
    are frozen dataclasses, so the tuple hashes cheaply and exactly.  The
    ``as_of`` pinning of the serving layer needs no extra key component:
    the executor folds a snapshot into the interval (clipping its end to
    ``as_of + 1``), so two requests with different snapshots already
    carry different intervals.
    """

    #: How long a follower waits for the leader's store before giving up
    #: and computing itself (a liveness bound, not a correctness knob).
    FLIGHT_TIMEOUT_S = 5.0

    __slots__ = ("_lru", "_flights", "_flight_lock", "coalesced")

    def __init__(self, capacity: int = 4096,
                 thread_safe: bool = False) -> None:
        self._lru = _VersionedLRU(capacity, thread_safe)
        self._flights: Dict[Tuple, threading.Event] = {}
        self._flight_lock = threading.Lock()
        #: Misses answered by waiting on another thread's identical
        #: in-flight computation instead of descending again.
        self.coalesced = 0

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    @staticmethod
    def key(aggregate_name: str, key_range: Any, interval: Any) -> Tuple:
        """The canonical cache key for one aggregate rectangle."""
        return (aggregate_name, key_range, interval)

    def lookup(self, key: Tuple, epoch: int) -> Optional[Tuple[Any, Any]]:
        """``(result, None)`` on a fresh hit, else ``None``."""
        return self._lru.lookup(key, epoch)

    # -- single-flight coalescing ------------------------------------------------------

    def begin_flight(self, key: Tuple, epoch: int):
        """Single-flight entry after a miss on ``(key, epoch)``.

        Returns ``("leader", event)`` when this thread should compute
        (and must call :meth:`end_flight` when done, success or not),
        ``("follower", event)`` when an identical miss is already being
        computed (wait with :meth:`wait_flight`), or ``("solo", None)``
        when coalescing is unavailable — inside a deferred-store section
        the leader's store would not land until its epoch validation, so
        a flight could hand followers nothing (or worse, an unvalidated
        value); solo threads just compute as before.
        """
        flight_key = (key, epoch)
        with self._flight_lock:
            event = self._flights.get(flight_key)
            if event is not None:
                return "follower", event
            if in_deferred_section():
                return "solo", None
            event = threading.Event()
            self._flights[flight_key] = event
            return "leader", event

    def wait_flight(self, event: threading.Event, key: Tuple,
                    epoch: int) -> Optional[Tuple[Any, Any]]:
        """Wait out the leader, then re-read the cache.

        Followers only ever consume *committed* cache entries — the
        re-lookup is what makes sharing safe: a leader whose store never
        landed (failed, torn, deferred) simply leaves the follower with a
        miss, and the follower computes itself.  A fresh hit counts into
        :attr:`coalesced`.
        """
        event.wait(self.FLIGHT_TIMEOUT_S)
        hit = self._lru.lookup(key, epoch)
        if hit is not None:
            self.coalesced += 1
        return hit

    def end_flight(self, key: Tuple, epoch: int,
                   event: threading.Event) -> None:
        """Leader's exit: unregister the flight and wake the followers."""
        flight_key = (key, epoch)
        with self._flight_lock:
            if self._flights.get(flight_key) is event:
                del self._flights[flight_key]
        event.set()

    def peek(self, key: Tuple, epoch: int) -> bool:
        """Non-mutating hit probe (EXPLAIN uses this)."""
        return self._lru.peek(key, epoch)

    def store(self, key: Tuple, result: Any, *, closed: bool,
              epoch: int) -> None:
        """Cache ``result``: pinned forever if ``closed``, else at ``epoch``."""
        self._lru.store(key, result, closed=closed, epoch=epoch)

    def clear(self) -> None:
        """Drop every cached result."""
        self._lru.clear()


class PointMemo:
    """Per-MVSBT memo of point queries with descent-path bookkeeping.

    ``get``/``put`` carry the tree's insertion epoch: entries for closed
    instants (``t`` below the tree clock at store time) are pinned
    forever, entries at the open frontier are epoch-validated.  ``put``
    records the root-to-leaf path the descent walked; a hit credits its
    length to ``stats.pages_saved`` — the exact number of ``fetch`` calls
    (and hence logical reads) the memo short-circuited.
    """

    __slots__ = ("_lru",)

    def __init__(self, capacity: int = 8192,
                 thread_safe: bool = False) -> None:
        self._lru = _VersionedLRU(capacity, thread_safe)

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key: int, t: int, epoch: int) -> Optional[Tuple[float, Any]]:
        """``(value, path)`` on a fresh hit, else ``None``."""
        hit = self._lru.lookup((key, t), epoch)
        if hit is None:
            return None
        value, path = hit
        self._lru.stats.pages_saved += len(path)
        return value, path

    def put(self, key: int, t: int, value: float, path: Tuple[int, ...], *,
            closed: bool, epoch: int) -> None:
        """Memoize one point answer with the descent path that found it."""
        self._lru.store((key, t), value, closed=closed, epoch=epoch,
                        extra=path)

    def clear(self) -> None:
        """Drop every memoized point."""
        self._lru.clear()


@dataclass
class CacheSnapshot:
    """Point-in-time roll-up of every cache layer behind a warehouse.

    ``merge`` folds several snapshots (one per shard) into fleet totals;
    the serving layer publishes the merged counters through the
    ``metrics`` op and EXPLAIN renders the per-query deltas.
    """

    result: Dict[str, int] = field(default_factory=dict)
    memo: Dict[str, int] = field(default_factory=dict)
    decoded: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def _add(into: Dict[str, int], other: Dict[str, int]) -> None:
        for name, value in other.items():
            into[name] = into.get(name, 0) + value

    def merge(self, other: "CacheSnapshot") -> "CacheSnapshot":
        """Fold ``other``'s counters into this snapshot; returns ``self``."""
        self._add(self.result, other.result)
        self._add(self.memo, other.memo)
        self._add(self.decoded, other.decoded)
        return self

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """``layer -> counters`` (layers a warehouse never attached are empty)."""
        return {"result": dict(self.result), "memo": dict(self.memo),
                "decoded": dict(self.decoded)}
