"""Range-temporal aggregation: the paper's headline query (sections 1 and 3).

An RTA query asks for SUM / COUNT / AVG over every tuple whose key lies in a
range *and* whose validity interval intersects a time interval.  Theorem 1
reduces it to six point queries against two auxiliary indexes:

* **LKST** (less-key, single-time): aggregate of tuples with ``key < k``
  alive at instant ``t``;
* **LKLT** (less-key, less-time): aggregate of tuples with ``key < k`` whose
  intervals ended at or before ``t``.

Both are maintained by MVSBTs under the transformation of Figure 1: a tuple
insertion at ``t1`` adds its value over the quadrant ``[key+1, maxkey] x
[t1, maxtime]`` of the LKST surface; a logical deletion at ``t2`` subtracts
it from the LKST surface and adds it to the LKLT surface from ``t2`` on.

With half-open query rectangles ``[k1, k2) x [t1, t2)`` and ``t3 = t2 - 1``
(the window's last instant), Equation (1) reads::

    RTA = LKST(k2, t3) - LKST(k1, t3)          # tuples alive at t3
        + LKLT(k2, t3) - LKLT(k1, t3)          # tuples dead by t3 ...
        - LKLT(k2, t1) + LKLT(k1, t1)          # ... but not dead by t1

:class:`RTAIndex` packages the reduction: one (LKST, LKLT) MVSBT pair per
additive aggregate (SUM and COUNT by default; AVG divides the two), plus the
transaction-time warehouse API (``insert``/``delete`` in time order, 1TNF
enforced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.aggregates import Aggregate, AVG, COUNT, SUM
from repro.core.model import Interval, KeyRange, MAX_KEY
from repro.errors import DuplicateKeyError, KeyNotFoundError, QueryError
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool


@dataclass(frozen=True)
class RTAResult:
    """All three aggregates of one query rectangle.

    ``avg`` is ``None`` when no tuple falls in the rectangle.
    """

    sum: float
    count: float

    @property
    def avg(self) -> Optional[float]:
        return self.sum / self.count if self.count else None


class RTAIndex:
    """Range-temporal SUM/COUNT/AVG over a transaction-time tuple stream.

    Parameters
    ----------
    pool:
        Buffer pool shared by all underlying MVSBTs (one I/O budget, as a
        single warehouse server would have).
    config:
        MVSBT configuration (capacity, strong factor, optimizations).
    key_space:
        Half-open key domain of the warehouse tuples.
    aggregates:
        Additive aggregates to maintain; each costs one (LKST, LKLT) MVSBT
        pair.  AVG needs both SUM and COUNT (the default).
    track_values:
        Keep the alive-tuple table (key -> (start, value)) so ``delete``
        only needs the key.  Disable for write-only streams where the
        caller supplies values on deletion.
    """

    def __init__(self, pool: BufferPool, config: Optional[MVSBTConfig] = None,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 aggregates: Tuple[Aggregate, ...] = (SUM, COUNT),
                 start_time: int = 1, paged_roots: bool = False,
                 track_values: bool = True) -> None:
        if not aggregates:
            raise ValueError("at least one additive aggregate is required")
        for aggregate in aggregates:
            if not aggregate.additive:
                raise ValueError(
                    f"{aggregate.name} is not additive; the MVSBT machinery "
                    "supports SUM/COUNT-style aggregates (paper section 3)"
                )
        self.pool = pool
        self.key_space = key_space
        self.aggregates = tuple(dict.fromkeys(aggregates))
        # LKST inserts go to key+1; queries probe up to key_space top.
        mvsbt_space = (key_space[0], key_space[1] + 1)
        self._lkst: Dict[str, MVSBT] = {}
        self._lklt: Dict[str, MVSBT] = {}
        for aggregate in self.aggregates:
            self._lkst[aggregate.name] = MVSBT(
                pool, config, key_space=mvsbt_space, start_time=start_time,
                paged_roots=paged_roots,
            )
            self._lklt[aggregate.name] = MVSBT(
                pool, config, key_space=mvsbt_space, start_time=start_time,
                paged_roots=paged_roots,
            )
        self.track_values = track_values
        self._alive: Dict[int, Tuple[int, float]] = {}
        self.now = start_time

    # -- update API ------------------------------------------------------------------

    def insert(self, key: int, value: float, t: int) -> None:
        """Insert a tuple alive from ``t`` (transaction-time, 1TNF enforced)."""
        self._check_key(key)
        if self.track_values and key in self._alive:
            raise DuplicateKeyError(
                f"key {key} is alive since t={self._alive[key][0]}"
            )
        for aggregate in self.aggregates:
            self._lkst[aggregate.name].insert(
                key + 1, t, aggregate.lift(value)
            )
        if self.track_values:
            self._alive[key] = (t, value)
        self.now = max(self.now, t)

    def delete(self, key: int, t: int, value: Optional[float] = None) -> float:
        """Logically delete the alive tuple with ``key`` at time ``t``.

        With ``track_values`` the stored value is used; otherwise the caller
        must supply the value the tuple was inserted with.  Returns it.
        """
        self._check_key(key)
        if self.track_values:
            if key not in self._alive:
                raise KeyNotFoundError(f"no alive tuple with key {key}")
            _, value = self._alive.pop(key)
        elif value is None:
            raise KeyNotFoundError(
                "delete needs the tuple value when track_values is off"
            )
        for aggregate in self.aggregates:
            lifted = aggregate.lift(value)
            self._lkst[aggregate.name].insert(key + 1, t, -lifted)
            self._lklt[aggregate.name].insert(key + 1, t, lifted)
        self.now = max(self.now, t)
        return value

    def update(self, key: int, value: float, t: int) -> None:
        """Replace the alive tuple's value at ``t`` (delete + insert)."""
        self.delete(key, t)
        self.insert(key, value, t)

    def load(self, events: Iterable[Tuple[str, int, float, int]]) -> None:
        """Replay a stream of ``("insert"|"delete", key, value, t)`` events."""
        for op, key, value, t in events:
            if op == "insert":
                self.insert(key, value, t)
            elif op == "delete":
                self.delete(key, t, value=None if self.track_values else value)
            else:
                raise ValueError(f"unknown event kind {op!r}")

    def alive_count(self) -> int:
        """Number of currently alive tuples (needs ``track_values``)."""
        return len(self._alive)

    # -- query API --------------------------------------------------------------------

    def query(self, key_range: KeyRange, interval: Interval,
              aggregate: Aggregate = SUM) -> Optional[float]:
        """The RTA of one rectangle for one aggregate.

        AVG returns ``None`` on an empty rectangle; SUM and COUNT return 0.
        Cost: six MVSBT point queries per maintained aggregate involved
        (Theorem 1 / Corollary 1: ``O(log_b n)`` I/Os).
        """
        if aggregate.name == AVG.name:
            result = self.aggregate_all(key_range, interval)
            return result.avg
        if aggregate.name not in self._lkst:
            raise QueryError(
                f"aggregate {aggregate.name} is not maintained by this index"
            )
        return self._reduce(aggregate.name, key_range, interval)

    def sum(self, key_range: KeyRange, interval: Interval) -> float:
        """RTA SUM of the rectangle (Equation 1)."""
        return self._reduce(SUM.name, key_range, interval)

    def count(self, key_range: KeyRange, interval: Interval) -> float:
        """RTA COUNT of the rectangle (Equation 1)."""
        return self._reduce(COUNT.name, key_range, interval)

    def avg(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """RTA AVG = SUM/COUNT; ``None`` on an empty rectangle."""
        return self.aggregate_all(key_range, interval).avg

    def aggregate_all(self, key_range: KeyRange,
                      interval: Interval) -> RTAResult:
        """SUM, COUNT and AVG of one rectangle in a single result."""
        for name in (SUM.name, COUNT.name):
            if name not in self._lkst:
                raise QueryError(
                    f"aggregate_all needs SUM and COUNT; {name} missing"
                )
        return RTAResult(
            sum=self._reduce(SUM.name, key_range, interval),
            count=self._reduce(COUNT.name, key_range, interval),
        )

    def query_batch(self, requests, stats=None) -> list:
        """Many rectangle queries, one MVSBT sweep per involved tree.

        ``requests`` is a sequence of ``(key_range, interval, aggregate)``
        triples; the result list is byte-identical to calling
        :meth:`query` for each.  Every request's Theorem-1 boundary
        probes are collected per (aggregate, LKST/LKLT) tree, each tree
        answers its whole probe set through
        :meth:`~repro.mvsbt.tree.MVSBT.query_batch` (one frontier-ordered
        traversal, pages fetched once per batch), and Equation (1) is
        then evaluated per request in the exact serial operation order —
        the float rounding matches :meth:`_reduce` bit for bit.  AVG
        requests contribute the SUM and COUNT probe sets and divide, as
        :meth:`aggregate_all` does; an aggregate of ``None`` requests the
        full :class:`RTAResult` (the batch twin of
        :meth:`aggregate_all`).  ``stats`` (a
        :class:`repro.core.batch.BatchScanStats`) receives the probe and
        page accounting of every sweep.
        """
        probe_lists: Dict[Tuple[str, str], list] = {}

        def reduction(name: str, key_range: KeyRange,
                      interval: Interval) -> Tuple[str, int, int]:
            self._validate_rectangle(key_range, interval)
            k1, k2 = key_range.low, key_range.high
            t1, t3 = interval.start, interval.end - 1
            lk = probe_lists.setdefault((name, "lkst"), [])
            lt = probe_lists.setdefault((name, "lklt"), [])
            i, j = len(lk), len(lt)
            lk.extend(((k2, t3), (k1, t3)))
            lt.extend(((k2, t3), (k1, t3), (k2, t1), (k1, t1)))
            return name, i, j

        plans = []
        for key_range, interval, aggregate in requests:
            if aggregate is None:
                for name in (SUM.name, COUNT.name):
                    if name not in self._lkst:
                        raise QueryError(
                            f"aggregate_all needs SUM and COUNT; "
                            f"{name} missing"
                        )
                plans.append((
                    "all",
                    reduction(SUM.name, key_range, interval),
                    reduction(COUNT.name, key_range, interval),
                ))
            elif aggregate.name == AVG.name:
                for name in (SUM.name, COUNT.name):
                    if name not in self._lkst:
                        raise QueryError(
                            f"aggregate_all needs SUM and COUNT; "
                            f"{name} missing"
                        )
                plans.append((
                    "avg",
                    reduction(SUM.name, key_range, interval),
                    reduction(COUNT.name, key_range, interval),
                ))
            else:
                if aggregate.name not in self._lkst:
                    raise QueryError(
                        f"aggregate {aggregate.name} is not maintained by "
                        "this index"
                    )
                plans.append((
                    "one",
                    reduction(aggregate.name, key_range, interval),
                ))

        values: Dict[Tuple[str, str], list] = {}
        for (name, side), probes in probe_lists.items():
            tree = (self._lkst if side == "lkst" else self._lklt)[name]
            values[(name, side)] = tree.query_batch(probes, stats)

        def evaluate(slot: Tuple[str, int, int]) -> float:
            name, i, j = slot
            lk = values[(name, "lkst")]
            lt = values[(name, "lklt")]
            result = lk[i] - lk[i + 1]
            result += lt[j] - lt[j + 1]
            result -= lt[j + 2] - lt[j + 3]
            return result

        results = []
        for plan in plans:
            if plan[0] == "all":
                results.append(RTAResult(sum=evaluate(plan[1]),
                                         count=evaluate(plan[2])))
            elif plan[0] == "avg":
                results.append(RTAResult(sum=evaluate(plan[1]),
                                         count=evaluate(plan[2])).avg)
            else:
                results.append(evaluate(plan[1]))
        return results

    def timeline(self, key_range: KeyRange, interval: Interval,
                 buckets: int, aggregate: Aggregate = SUM
                 ) -> list[Tuple[Interval, Optional[float]]]:
        """Time-bucketed rollup: the aggregate per bucket of ``interval``.

        Splits ``interval`` into ``buckets`` near-equal half-open buckets
        and runs one rectangle query per bucket — the report pattern of
        the paper's introduction ("focus the aggregation to any
        time-interval and/or key-range"), at ``O(buckets · log n)`` I/Os.
        Note the buckets partition the *time axis*, not the tuples: a
        tuple spanning a boundary contributes to both buckets (the RTA
        semantics), so SUM over buckets generally exceeds SUM overall.
        """
        if buckets < 1:
            raise QueryError("timeline needs at least one bucket")
        span = interval.length
        if buckets > span:
            raise QueryError(
                f"cannot split {span} instants into {buckets} buckets"
            )
        edges = [
            interval.start + span * i // buckets for i in range(buckets + 1)
        ]
        series: list[Tuple[Interval, Optional[float]]] = []
        for lo, hi in zip(edges, edges[1:]):
            bucket = Interval(lo, hi)
            series.append((bucket, self.query(key_range, bucket, aggregate)))
        return series

    def key_histogram(self, bands: "list[KeyRange]", interval: Interval,
                      aggregate: Aggregate = SUM
                      ) -> list[Tuple[KeyRange, Optional[float]]]:
        """Group-by-key-band rollup: one rectangle query per band."""
        return [
            (band, self.query(band, interval, aggregate)) for band in bands
        ]

    def cumulative(self, key_range: KeyRange, t: int, w: int,
                   aggregate: Aggregate = SUM) -> Optional[float]:
        """Range *cumulative* aggregate: tuples with keys in range whose
        intervals intersect the window ``[t - w, t]`` (instants).

        The paper's section 2.2 needs two scalar SB-trees for cumulative
        aggregates with arbitrary window offset ``w``; with the RTA
        machinery the *range* generalization falls out for free — the
        window is just the rectangle ``key_range x [t - w, t + 1)``.
        """
        if w < 0:
            raise QueryError(f"window offset must be non-negative, got {w}")
        start = max(t - w, 1)
        return self.query(key_range, Interval(start, t + 1), aggregate)

    def _reduce(self, name: str, key_range: KeyRange,
                interval: Interval) -> float:
        """Equation (1): two LKST and four LKLT point queries."""
        self._validate_rectangle(key_range, interval)
        k1, k2 = key_range.low, key_range.high
        t1, t3 = interval.start, interval.end - 1
        lkst, lklt = self._lkst[name], self._lklt[name]
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("rta.reduce", aggregate=name,
                             key_range=str(key_range),
                             interval=str(interval)):
                return self._reduce_traced(lkst, lklt, k1, k2, t1, t3, tracer)
        result = lkst.query(k2, t3) - lkst.query(k1, t3)
        result += lklt.query(k2, t3) - lklt.query(k1, t3)
        result -= lklt.query(k2, t1) - lklt.query(k1, t1)
        return result

    @staticmethod
    def _reduce_traced(lkst: MVSBT, lklt: MVSBT, k1: int, k2: int,
                       t1: int, t3: int, tracer) -> float:
        """Equation (1) with one ``rta.point`` span per point query.

        Evaluation order (and hence float rounding) is identical to the
        untraced path; ``sign`` records the term's contribution to the sum.
        """
        def point(tree: MVSBT, label: str, key: int, t: int,
                  sign: int) -> float:
            with tracer.span("rta.point", tree=label, key=key, t=t,
                             sign=sign):
                return tree.query(key, t)

        result = point(lkst, "lkst", k2, t3, +1) \
            - point(lkst, "lkst", k1, t3, -1)
        result += point(lklt, "lklt", k2, t3, +1) \
            - point(lklt, "lklt", k1, t3, -1)
        result -= point(lklt, "lklt", k2, t1, -1) \
            - point(lklt, "lklt", k1, t1, +1)
        return result

    def _validate_rectangle(self, key_range: KeyRange,
                            interval: Interval) -> None:
        if key_range.low < self.key_space[0] \
                or key_range.high > self.key_space[1]:
            raise QueryError(
                f"key range {key_range} outside key space {self.key_space}"
            )
        if interval.start < 1:
            raise QueryError(f"interval {interval} starts before time 1")

    def _check_key(self, key: int) -> None:
        if not (self.key_space[0] <= key < self.key_space[1]):
            raise QueryError(f"key {key} outside key space {self.key_space}")

    # -- persistence -------------------------------------------------------------------

    def save(self, directory: str) -> None:
        """Checkpoint the whole index (all MVSBTs share one pool, so one
        checkpoint holds every page) plus the alive-tuple table."""
        from repro.storage.checkpoint import write_checkpoint

        meta = {
            "type": "rta-index",
            "key_space": list(self.key_space),
            "aggregates": [a.name for a in self.aggregates],
            "now": self.now,
            "track_values": self.track_values,
            "alive": [[key, start, value]
                      for key, (start, value) in sorted(self._alive.items())],
            "lkst": {name: tree.state() for name, tree in self._lkst.items()},
            "lklt": {name: tree.state() for name, tree in self._lklt.items()},
        }
        write_checkpoint(self.pool, meta, directory)

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64) -> "RTAIndex":
        """Reopen an index from a checkpoint written by :meth:`save`."""
        from repro.core.aggregates import ADDITIVE_AGGREGATES
        from repro.storage.checkpoint import read_checkpoint

        pool, meta = read_checkpoint(directory, buffer_pages)
        if meta.get("type") != "rta-index":
            raise ValueError(
                f"checkpoint holds a {meta.get('type')!r}, not an RTA index"
            )
        by_name = {a.name: a for a in ADDITIVE_AGGREGATES}
        index = cls.__new__(cls)
        index.pool = pool
        index.key_space = tuple(meta["key_space"])
        index.aggregates = tuple(by_name[name] for name in meta["aggregates"])
        index.now = meta["now"]
        index.track_values = meta["track_values"]
        index._alive = {
            key: (start, value) for key, start, value in meta["alive"]
        }
        index._lkst = {
            name: MVSBT.restore(pool, state)
            for name, state in meta["lkst"].items()
        }
        index._lklt = {
            name: MVSBT.restore(pool, state)
            for name, state in meta["lklt"].items()
        }
        return index

    # -- read-path caching --------------------------------------------------------------

    def enable_memo(self, capacity: int = 8192,
                    thread_safe: bool = False) -> None:
        """Attach a point-query memo to every underlying MVSBT.

        Equation (1) probes tree boundaries that repeat across overlapping
        query rectangles; the memo answers repeated probes without a
        descent (see :mod:`repro.core.cache` for the staleness argument).
        """
        for trees in (self._lkst, self._lklt):
            for tree in trees.values():
                tree.enable_memo(capacity, thread_safe)

    def disable_memo(self) -> None:
        """Detach every tree's memo."""
        for trees in (self._lkst, self._lklt):
            for tree in trees.values():
                tree.disable_memo()

    def memo_stats(self) -> Optional[Dict[str, int]]:
        """Summed memo counters across all trees; ``None`` if unmemoized."""
        totals: Optional[Dict[str, int]] = None
        for trees in (self._lkst, self._lklt):
            for tree in trees.values():
                if tree.memo is None:
                    continue
                stats = tree.memo.stats.as_dict()
                if totals is None:
                    totals = dict.fromkeys(stats, 0)
                for name, value in stats.items():
                    totals[name] += value
        return totals

    # -- introspection -----------------------------------------------------------------

    def page_count(self) -> int:
        """Total pages across all underlying MVSBTs (Figure 4a space metric)."""
        return sum(tree.page_count()
                   for trees in (self._lkst, self._lklt)
                   for tree in trees.values())

    def trees(self) -> Dict[str, Tuple[MVSBT, MVSBT]]:
        """(LKST, LKLT) pair per aggregate name, for inspection and tests."""
        return {
            name: (self._lkst[name], self._lklt[name]) for name in self._lkst
        }

    def check_invariants(self) -> None:
        """Audit every underlying MVSBT."""
        for trees in (self._lkst, self._lklt):
            for tree in trees.values():
                tree.check_invariants()
