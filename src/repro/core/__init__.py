"""Core layer: the temporal data model and the paper's RTA contribution.

* :mod:`repro.core.model` — intervals, key ranges, rectangles, temporal
  tuples, and the transaction-time conventions of the paper's section 2.3.
* :mod:`repro.core.aggregates` — SUM / COUNT / AVG (and MIN/MAX for the
  SB-tree extension) aggregate descriptors.
* :mod:`repro.core.rta` — :class:`~repro.core.rta.RTAIndex`, the paper's
  headline structure: two MVSBTs (LKST + LKLT) answering range-temporal
  aggregates via the Theorem 1 reduction.
"""

from repro.core.aggregates import Aggregate, AVG, COUNT, MAX, MIN, SUM
from repro.core.model import (
    Interval,
    KeyRange,
    MAX_KEY,
    MAX_TIME,
    NOW,
    Rectangle,
    TemporalTuple,
)


def __getattr__(name: str):
    # RTAIndex/TemporalWarehouse pull in the index packages; resolve lazily
    # so the model and aggregate types stay importable from lighter
    # contexts.
    if name in ("RTAIndex", "RTAResult"):
        from repro.core import rta

        value = getattr(rta, name)
        globals()[name] = value
        return value
    if name in ("TemporalWarehouse", "QueryPlan"):
        from repro.core import warehouse

        value = getattr(warehouse, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")

__all__ = [
    "Aggregate",
    "AVG",
    "COUNT",
    "Interval",
    "KeyRange",
    "MAX",
    "MAX_KEY",
    "MAX_TIME",
    "MIN",
    "NOW",
    "Rectangle",
    "RTAIndex",
    "RTAResult",
    "SUM",
    "TemporalTuple",
]
