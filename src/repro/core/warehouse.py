"""TemporalWarehouse: the complete system a deployment would run.

The paper's structures divide the labor: the **MVBT** stores the tuples
themselves (snapshot retrieval, key history, rectangle retrieval — and the
only way to compute non-additive aggregates like MIN/MAX, the paper's open
problem (ii)); the **two-MVSBT RTA index** answers additive aggregates in
logarithmic I/Os.  :class:`TemporalWarehouse` maintains both over one
update stream and routes each aggregate query through a small cost-based
planner:

* additive aggregates (SUM/COUNT/AVG) normally take the MVSBT plan at a
  fixed ~``6 x height`` page reads;
* the MVBT retrieve-then-aggregate plan costs ~``log_b n + s/b`` reads for
  ``s`` qualifying tuples — cheaper only for extremely selective
  rectangles.  The planner estimates ``s`` with one cheap MVSBT COUNT
  probe and compares the two estimates (the crossover the Figure 4b
  reproduction actually measures);
* MIN/MAX have no known logarithmic index (open problem (ii)) and always
  take the retrieval plan.

``explain()`` returns the decision with both cost estimates, so the
planner is inspectable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.aggregates import Aggregate, AVG, COUNT, MAX, MIN, SUM
from repro.core.batch import BatchScanStats
from repro.core.cache import CacheConfig, CacheSnapshot, ResultCache
from repro.core.model import Interval, KeyRange, MAX_KEY, TemporalTuple
from repro.core.rta import RTAIndex, RTAResult
from repro.errors import QueryError, StorageError
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.mvsbt.tree import MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

#: Aggregates answerable by the MVSBT plan.
_ADDITIVE = {SUM.name, COUNT.name, AVG.name}
#: Aggregates that require tuple retrieval.
_ORDER = {MIN.name, MAX.name}


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one aggregate query."""

    plan: str                  # "mvsbt" or "mvbt-scan"
    reason: str
    mvsbt_cost_reads: float
    mvbt_cost_reads: float
    estimated_tuples: float

    def __str__(self) -> str:
        return (
            f"{self.plan} ({self.reason}; est. mvsbt={self.mvsbt_cost_reads:.0f} "
            f"reads, mvbt-scan={self.mvbt_cost_reads:.0f} reads, "
            f"~{self.estimated_tuples:.0f} tuples)"
        )


class TemporalWarehouse:
    """A transaction-time warehouse with tuple storage and fast aggregates.

    Parameters
    ----------
    key_space:
        Half-open key domain of the tuples.
    page_capacity:
        Records per page for both structures (the paper derives ~200-250
        from 4 KB pages; tests use small values).
    buffer_pages:
        LRU buffer frames per structure.
    strong_factor:
        MVSBT strong factor (paper: 0.9).
    """

    #: Observability hook set by :func:`repro.obs.attach_metrics`; a class
    #: attribute (not set in ``__init__``) because :meth:`load` builds
    #: warehouses via ``cls.__new__``.
    metrics = None
    #: Optional :class:`repro.core.cache.ResultCache` set by
    #: :meth:`enable_cache`; class attribute for the same ``cls.__new__``
    #: reason, and so the uncached query path pays one ``is None`` check.
    result_cache = None
    #: Write epoch open-present cache entries validate against; bumped by
    #: every update.  Class attribute so loaded warehouses start at 0.
    write_epoch = 0
    #: Accounting for :meth:`aggregate_batch` sweeps; class attribute so
    #: ``cls.__new__``-built warehouses degrade to unaccounted batches.
    batch_stats = None

    def __init__(self, key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 page_capacity: int = 32, buffer_pages: int = 64,
                 strong_factor: float = 0.9, start_time: int = 1,
                 buffer_policy: str = "lru") -> None:
        self.batch_stats = BatchScanStats()
        self.key_space = key_space
        self.tuples = MVBT(
            BufferPool(InMemoryDiskManager(), capacity=buffer_pages,
                       policy=buffer_policy),
            MVBTConfig(capacity=page_capacity),
            key_space=key_space, start_time=start_time,
        )
        self.aggregates = RTAIndex(
            BufferPool(InMemoryDiskManager(), capacity=buffer_pages,
                       policy=buffer_policy),
            MVSBTConfig(capacity=page_capacity,
                        strong_factor=strong_factor),
            key_space=key_space, aggregates=(SUM, COUNT),
            start_time=start_time,
        )
        self._page_capacity = page_capacity
        self._wal = None
        self._durable_dir: Optional[str] = None

    # -- update API --------------------------------------------------------------------

    def insert(self, key: int, value: float, t: int) -> None:
        """Insert a tuple alive from ``t`` (1TNF and time order enforced)."""
        self.tuples.insert(key, value, t)
        self.aggregates.insert(key, value, t)
        self.write_epoch += 1
        if self._wal is not None:
            self._wal.append("insert", key, value, t)

    def delete(self, key: int, t: int) -> float:
        """Logically delete the alive tuple with ``key`` at ``t``."""
        value = self.tuples.delete(key, t)
        self.aggregates.delete(key, t)
        self.write_epoch += 1
        if self._wal is not None:
            self._wal.append("delete", key, value, t)
        return value

    def update(self, key: int, value: float, t: int) -> None:
        """Replace the alive tuple's value at ``t``."""
        self.delete(key, t)
        self.insert(key, value, t)

    def apply_batch(self, ops) -> List[Tuple[str, object]]:
        """Apply one commit group's ops with a single WAL flush.

        ``ops`` is a sequence of ``("insert", key, value, t)`` /
        ``("delete", key, t)`` tuples in acknowledgement order.  Each op
        is applied with the same per-op semantics as :meth:`insert` /
        :meth:`delete` — a rejected op (chronology violation, duplicate
        key, missing key) does not abort the rest of the group, exactly
        as N serial calls would behave.  The batch then hits the WAL via
        one :meth:`~repro.storage.wal.WriteAheadLog.append_batch` call
        (one write + flush + fsync for the whole group — the group-commit
        amortization) and bumps :attr:`write_epoch` once, publishing the
        group to epoch-validated readers as a single version step.

        Returns one ``("ok", result)`` or ``("err", payload)`` pair per
        op, where ``result`` is ``None`` for inserts and the deleted
        value for deletes, and ``payload`` is an
        :func:`repro.errors.error_payload` dict (picklable, so batches
        survive the procpool RPC boundary).
        """
        from repro.errors import error_payload

        results: List[Tuple[str, object]] = []
        logged: List[Tuple[str, int, float, int]] = []
        applied = False
        for op in ops:
            kind = op[0]
            try:
                if kind == "insert":
                    _, key, value, t = op
                    self.tuples.insert(key, value, t)
                    self.aggregates.insert(key, value, t)
                    logged.append(("insert", key, value, t))
                    results.append(("ok", None))
                elif kind == "delete":
                    _, key, t = op
                    value = self.tuples.delete(key, t)
                    self.aggregates.delete(key, t)
                    logged.append(("delete", key, value, t))
                    results.append(("ok", value))
                else:
                    raise QueryError(f"unknown batch op {kind!r}")
                applied = True
            except Exception as exc:  # per-op isolation, like serial calls
                results.append(("err", error_payload(exc)))
        if applied:
            self.write_epoch += 1
            if self._wal is not None:
                self._wal.append_batch(logged)
        return results

    def load_events(self, events, batch_size: Optional[int] = None,
                    mode: str = "direct"):
        """Bulk-apply a chronological event batch via the batch kernels.

        Thin wrapper over :class:`~repro.core.ingest.BatchLoader` — page
        contents come out bit-identical to event-at-a-time ingestion, but
        page search state is maintained incrementally and write-backs are
        coalesced.  ``mode="buffered"`` additionally opens buffer-tree
        ingest windows on the aggregate MVSBTs (the tuple MVBT keeps the
        batch kernel); query *answers* stay byte-identical, page I/O
        schedules do not.  Updates still reach the WAL one event at a
        time (``insert``/``delete`` below are the loader's only entry
        points) in either mode, so durability is unchanged — a crash
        mid-flush recovers by WAL replay.  Returns the
        :class:`~repro.core.ingest.IngestReport`.
        """
        from repro.core.ingest import (BatchLoader, DEFAULT_BATCH_SIZE,
                                       coerce_events)

        loader = BatchLoader(self, batch_size or DEFAULT_BATCH_SIZE,
                             mode=mode)
        return loader.load(coerce_events(events))

    def load_events_packed(self, blob: bytes,
                           batch_size: Optional[int] = None,
                           mode: str = "direct"):
        """:meth:`load_events` over a :func:`~repro.storage.serialization.pack_events`
        blob — the procpool LOAD RPC ships one packed columnar buffer per
        shard instead of a list of per-event tuples."""
        from repro.storage.serialization import unpack_events

        return self.load_events(unpack_events(blob), batch_size, mode)

    def __reduce__(self):
        # Warehouses hold buffer pools, file handles and lambdas; shipping
        # one through pickle (e.g. into a spawn-started worker) would be a
        # silent deep copy at best.  Procpool workers rebuild from a
        # ShardSpec instead.
        raise TypeError(
            "TemporalWarehouse is not picklable; pass a construction spec "
            "(see repro.serve.procpool.ShardSpec) and rebuild in the worker"
        )

    @property
    def now(self) -> int:
        return self.tuples.now

    # -- planner -----------------------------------------------------------------------

    def explain(self, key_range: KeyRange, interval: Interval,
                aggregate: Aggregate = SUM,
                tuples: Optional[float] = None) -> QueryPlan:
        """The plan :meth:`aggregate` would choose, with cost estimates.

        ``tuples`` short-circuits the planner's cardinality estimate with
        a precomputed exact COUNT (the batch path computes every pending
        query's estimate in one sweep); the decision is identical because
        the estimate itself is exact either way.
        """
        if aggregate.name in _ORDER:
            if tuples is None:
                tuples = self._estimate_tuples(key_range, interval)
            return QueryPlan(
                plan="mvbt-scan",
                reason=f"{aggregate.name} is not additive (open problem ii)",
                mvsbt_cost_reads=float("inf"),
                mvbt_cost_reads=self._scan_cost(key_range, interval, tuples),
                estimated_tuples=tuples,
            )
        if aggregate.name not in _ADDITIVE:
            raise QueryError(f"unknown aggregate {aggregate.name!r}")
        mvsbt_cost = self._mvsbt_cost(aggregate)
        if tuples is None:
            tuples = self._estimate_tuples(key_range, interval)
        scan_cost = self._scan_cost(key_range, interval, tuples)
        if scan_cost < mvsbt_cost:
            return QueryPlan(
                plan="mvbt-scan",
                reason="rectangle is selective enough to retrieve",
                mvsbt_cost_reads=mvsbt_cost,
                mvbt_cost_reads=scan_cost,
                estimated_tuples=tuples,
            )
        return QueryPlan(
            plan="mvsbt", reason="six point queries beat retrieval",
            mvsbt_cost_reads=mvsbt_cost, mvbt_cost_reads=scan_cost,
            estimated_tuples=tuples,
        )

    def _mvsbt_cost(self, aggregate: Aggregate) -> float:
        height = self.aggregates.trees()[SUM.name][0].height()
        probes = 12 if aggregate.name == AVG.name else 6
        return probes * (height + 1)

    def _estimate_tuples(self, key_range: KeyRange,
                         interval: Interval) -> float:
        # One COUNT reduction: six point queries, O(log) reads — cheap
        # enough to use as the planner's cardinality estimate and exact.
        return float(self.aggregates.count(key_range, interval))

    def _scan_cost(self, key_range: KeyRange, interval: Interval,
                   tuples: Optional[float] = None) -> float:
        if tuples is None:
            tuples = self._estimate_tuples(key_range, interval)
        height = self.tuples.pool.fetch(self.tuples.root_id).meta["level"] + 1
        # log_b n descent plus one page per b/2 retrieved tuples (alive
        # entries fill at least half a page under the weak condition).
        return height + 1 + tuples / max(self._page_capacity // 2, 1)

    # -- query API ---------------------------------------------------------------------

    def aggregate(self, key_range: KeyRange, interval: Interval,
                  aggregate: Aggregate = SUM) -> Optional[float]:
        """The aggregate of one key-time rectangle via the chosen plan.

        MIN/MAX return ``None`` on empty rectangles, as does AVG.

        With a result cache attached (:meth:`enable_cache`) repeated
        rectangles are answered without planning or descending.  The
        write epoch and the closed/open classification are both captured
        *before* execution, so an update racing the query can only make
        the stored entry read as stale — never serve a stale value.
        """
        tracer = self.aggregates.pool.tracer
        metrics = self.metrics
        cache = self.result_cache
        flight = None
        if cache is not None:
            epoch = self.write_epoch
            closed = interval.end <= self.now
            cache_key = ResultCache.key(aggregate.name, key_range, interval)
            hit = cache.lookup(cache_key, epoch)
            if hit is not None:
                if tracer.enabled:
                    with tracer.span("warehouse.aggregate",
                                     aggregate=aggregate.name,
                                     key_range=str(key_range),
                                     interval=str(interval)) as span:
                        span.attrs["cache"] = "hit"
                if metrics is not None:
                    metrics.result_cache_hits.inc()
                return hit[0]
            # Single-flight: an identical miss already being computed by
            # another thread is waited out, not recomputed — the follower
            # re-reads the cache, so it only ever shares a committed value.
            role, flight = cache.begin_flight(cache_key, epoch)
            if role == "follower":
                shared = cache.wait_flight(flight, cache_key, epoch)
                flight = None
                if shared is not None:
                    if metrics is not None:
                        metrics.result_cache_hits.inc()
                    return shared[0]
            elif role != "leader":
                flight = None
        try:
            if metrics is not None:
                ios_before = (self.tuples.pool.stats.total_ios
                              + self.aggregates.pool.stats.total_ios)
            if tracer.enabled:
                with tracer.span("warehouse.aggregate",
                                 aggregate=aggregate.name,
                                 key_range=str(key_range),
                                 interval=str(interval)) as span:
                    if cache is not None:
                        span.attrs["cache"] = "miss"
                    with tracer.span("warehouse.plan"):
                        plan = self.explain(key_range, interval, aggregate)
                    span.attrs["plan"] = plan.plan
                    with tracer.span("warehouse.execute", plan=plan.plan):
                        result = self.run_plan(plan, key_range, interval,
                                               aggregate)
            else:
                plan = self.explain(key_range, interval, aggregate)
                result = self.run_plan(plan, key_range, interval, aggregate)
            if cache is not None:
                cache.store(cache_key, result, closed=closed, epoch=epoch)
                if metrics is not None:
                    metrics.result_cache_misses.inc()
            if metrics is not None:
                ios_after = (self.tuples.pool.stats.total_ios
                             + self.aggregates.pool.stats.total_ios)
                metrics.query_ios.observe(ios_after - ios_before)
                if plan.plan == "mvsbt":
                    metrics.plan_mvsbt.inc()
                else:
                    metrics.plan_mvbt_scan.inc()
        finally:
            if flight is not None:
                cache.end_flight(cache_key, epoch, flight)
        return result

    def aggregate_batch(self, queries) -> List[object]:
        """Answer many aggregate queries through one batched read sweep.

        ``queries`` is a sequence of ``(key_range, interval, aggregate)``
        triples.  Returns a list with one entry per query holding exactly
        what :meth:`aggregate` would return for it — or, when that query
        would raise, the raised exception instance itself: a failing
        query fails only itself, and callers re-raise or report per
        query.  An aggregate of ``None`` requests :meth:`aggregate_all`
        semantics for that slot (an :class:`~repro.core.rta.RTAResult`,
        no cache, no planner — the sharded router's AVG gather needs the
        per-shard partials).

        Three passes: every query probes the result cache first (hits
        drop out immediately, and identical survivor triples collapse to
        one executed slot whose answer fans out); the survivors' planner
        cardinality
        estimates are computed with one
        :meth:`~repro.core.rta.RTAIndex.query_batch` COUNT sweep; then
        all mvsbt-planned queries are answered by a second sweep — each
        MVSBT page fetched and decoded once per batch — while mvbt-scan
        queries retrieve individually.  Cache stores happen after the
        sweeps against the per-query epoch captured before execution
        (parking in the calling thread's deferred-store section when one
        is open).  Answers are byte-identical to serial
        :meth:`aggregate` calls.
        """
        queries = list(queries)
        n = len(queries)
        results: List[object] = [None] * n
        errored = [False] * n
        metrics = self.metrics
        cache = self.result_cache
        stats = self.batch_stats
        if stats is not None:
            stats.note_batch(n)
        if metrics is not None:
            ios_before = (self.tuples.pool.stats.total_ios
                          + self.aggregates.pool.stats.total_ios)

        # Pass 1: per-query cache probe (epoch and closedness captured
        # before any execution, as the serial path does).
        pending: List[int] = []
        meta: dict = {}
        for qi, (key_range, interval, aggregate) in enumerate(queries):
            if cache is not None and aggregate is not None:
                epoch = self.write_epoch
                closed = interval.end <= self.now
                cache_key = ResultCache.key(aggregate.name, key_range,
                                            interval)
                hit = cache.lookup(cache_key, epoch)
                if hit is not None:
                    results[qi] = hit[0]
                    if metrics is not None:
                        metrics.result_cache_hits.inc()
                    continue
                meta[qi] = (cache_key, epoch, closed)
            pending.append(qi)

        # Dedup identical pending triples: read-hot batches repeat whole
        # queries, not just boundary probes, so one planned/executed slot
        # answers every duplicate position (the answer fans out after the
        # sweeps; a representative's error is every duplicate's error,
        # exactly as re-running the same bad rectangle would be).
        dup_of: dict = {}
        rep_for: dict = {}
        survivors: List[int] = []
        for qi in pending:
            key_range, interval, aggregate = queries[qi]
            tkey = (key_range, interval,
                    aggregate.name if aggregate is not None else None)
            rep = rep_for.get(tkey)
            if rep is None:
                rep_for[tkey] = qi
                survivors.append(qi)
            else:
                dup_of[qi] = rep
        pending = survivors

        # Pass 2: plan.  One COUNT sweep yields every pending query's
        # cardinality estimate (exact, so decisions match explain()).
        estimable: List[int] = []
        sweep: List[int] = []
        for qi in pending:
            key_range, interval, aggregate = queries[qi]
            try:
                if aggregate is None:
                    # aggregate_all slot: no plan, straight to the sweep.
                    self.aggregates._validate_rectangle(key_range, interval)
                    sweep.append(qi)
                    continue
                if aggregate.name not in _ADDITIVE \
                        and aggregate.name not in _ORDER:
                    raise QueryError(
                        f"unknown aggregate {aggregate.name!r}")
                self.aggregates._validate_rectangle(key_range, interval)
            except Exception as exc:
                results[qi] = exc
                errored[qi] = True
                continue
            estimable.append(qi)
        estimates: dict = {}
        if estimable:
            try:
                counts = self.aggregates.query_batch(
                    [(queries[qi][0], queries[qi][1], COUNT)
                     for qi in estimable], stats)
                for qi, value in zip(estimable, counts):
                    estimates[qi] = float(value)
            except Exception:
                estimates = {}  # explain() below recomputes per query

        plans: dict = {}
        for qi in estimable:
            key_range, interval, aggregate = queries[qi]
            try:
                plan = self.explain(key_range, interval, aggregate,
                                    tuples=estimates.get(qi))
            except Exception as exc:
                results[qi] = exc
                errored[qi] = True
                continue
            plans[qi] = plan
            if plan.plan == "mvsbt":
                sweep.append(qi)
            else:
                try:
                    results[qi] = self.run_plan(plan, key_range, interval,
                                                aggregate)
                except Exception as exc:
                    results[qi] = exc
                    errored[qi] = True

        # Pass 3: one frontier-ordered sweep answers every mvsbt-planned
        # query; a sweep-level failure degrades to per-query execution so
        # one bad query cannot take the batch down.
        if sweep:
            try:
                answers = self.aggregates.query_batch(
                    [queries[qi] for qi in sweep], stats)
                for qi, value in zip(sweep, answers):
                    results[qi] = value
            except Exception:
                for qi in sweep:
                    key_range, interval, aggregate = queries[qi]
                    try:
                        if aggregate is None:
                            results[qi] = self.aggregates.aggregate_all(
                                key_range, interval)
                        else:
                            results[qi] = self.run_plan(
                                plans[qi], key_range, interval, aggregate)
                    except Exception as exc:
                        results[qi] = exc
                        errored[qi] = True

        for qi, rep in dup_of.items():
            results[qi] = results[rep]
            errored[qi] = errored[rep]

        if cache is not None:
            for qi in pending:
                if errored[qi] or qi not in meta:
                    continue
                cache_key, epoch, closed = meta[qi]
                cache.store(cache_key, results[qi], closed=closed,
                            epoch=epoch)
                if metrics is not None:
                    metrics.result_cache_misses.inc()
        if metrics is not None:
            ios_after = (self.tuples.pool.stats.total_ios
                         + self.aggregates.pool.stats.total_ios)
            metrics.query_ios.observe(ios_after - ios_before)
            for qi, plan in plans.items():
                if errored[qi]:
                    continue
                if plan.plan == "mvsbt":
                    metrics.plan_mvsbt.inc()
                else:
                    metrics.plan_mvbt_scan.inc()
        return results

    def run_plan(self, plan: QueryPlan, key_range: KeyRange,
                 interval: Interval,
                 aggregate: Aggregate = SUM) -> Optional[float]:
        """Execute an already-planned aggregate query.

        Split out of :meth:`aggregate` so EXPLAIN-style callers (see
        :func:`repro.obs.explain_query`) can plan once, inspect the
        decision, and execute the same plan without re-planning.
        """
        if plan.plan == "mvsbt":
            return self.aggregates.query(key_range, interval, aggregate)
        rows = self.tuples.rectangle_query(
            key_range.low, key_range.high, interval.start, interval.end
        )
        if aggregate.name in _ORDER and not rows:
            return None
        if aggregate.name == AVG.name:
            return (sum(v for *_rest, v in rows) / len(rows)) if rows else None
        acc = aggregate.identity
        for (_k, _s, _e, value) in rows:
            acc = aggregate.combine(acc, aggregate.lift(value))
        return acc

    def sum(self, key_range: KeyRange, interval: Interval) -> float:
        """SUM via the chosen plan."""
        return self.aggregate(key_range, interval, SUM)

    def count(self, key_range: KeyRange, interval: Interval) -> float:
        """COUNT via the chosen plan."""
        return self.aggregate(key_range, interval, COUNT)

    def avg(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """AVG via the chosen plan; ``None`` on an empty rectangle."""
        return self.aggregate(key_range, interval, AVG)

    def min(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """MIN via retrieval (open problem (ii)); ``None`` when empty."""
        return self.aggregate(key_range, interval, MIN)

    def max(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """MAX via retrieval (open problem (ii)); ``None`` when empty."""
        return self.aggregate(key_range, interval, MAX)

    def aggregate_all(self, key_range: KeyRange,
                      interval: Interval) -> RTAResult:
        """SUM, COUNT and AVG in one result (always the MVSBT plan)."""
        return self.aggregates.aggregate_all(key_range, interval)

    # -- read-path caching -------------------------------------------------------------

    def enable_cache(self, config: Optional[CacheConfig] = None,
                     thread_safe: bool = False) -> None:
        """Attach the layered read-path cache (see :mod:`repro.core.cache`).

        Installs the warehouse-level result cache and a point-query memo
        on every MVSBT behind the RTA index.  ``thread_safe`` guards the
        cache bookkeeping for multi-reader servers.  Idempotent; call
        :meth:`disable_cache` to restore the uncached read path.
        """
        config = config or CacheConfig()
        if config.result_entries:
            self.result_cache = ResultCache(config.result_entries,
                                            thread_safe)
        if config.memo_entries:
            self.aggregates.enable_memo(config.memo_entries, thread_safe)

    def disable_cache(self) -> None:
        """Detach every read-path cache layer."""
        self.result_cache = None
        self.aggregates.disable_memo()

    def cache_probe(self, key_range: KeyRange, interval: Interval,
                    aggregate: Aggregate = SUM) -> Optional[str]:
        """Would :meth:`aggregate` hit the result cache right now?

        ``"hit"``/``"miss"`` with a cache attached, ``None`` without one.
        Non-mutating (no stats, no recency, no stale drops) — EXPLAIN uses
        it to report the cache outcome without perturbing the cache.
        """
        cache = self.result_cache
        if cache is None:
            return None
        key = ResultCache.key(aggregate.name, key_range, interval)
        return "hit" if cache.peek(key, self.write_epoch) else "miss"

    def batch_snapshot(self) -> dict:
        """Counters of :attr:`batch_stats` (empty when unaccounted)."""
        return self.batch_stats.as_dict() if self.batch_stats is not None \
            else {}

    def cache_snapshot(self) -> CacheSnapshot:
        """Current counters of every cache layer behind this warehouse."""
        snapshot = CacheSnapshot()
        if self.result_cache is not None:
            snapshot.result = self.result_cache.stats.as_dict()
        memo = self.aggregates.memo_stats()
        if memo is not None:
            snapshot.memo = memo
        for pool in (self.tuples.pool, self.aggregates.pool):
            decoded = getattr(pool.disk, "decoded_cache", None)
            if decoded is not None:
                CacheSnapshot._add(snapshot.decoded,
                                   decoded.stats.as_dict())
        return snapshot

    # -- tuple retrieval ---------------------------------------------------------------

    def snapshot(self, key_range: KeyRange, t: int) -> List[Tuple[int, float]]:
        """(key, value) pairs alive at instant ``t`` with keys in range."""
        return self.tuples.range_snapshot(key_range.low, key_range.high, t)

    def tuples_in(self, key_range: KeyRange,
                  interval: Interval) -> List[TemporalTuple]:
        """Every logical tuple whose key and lifespan hit the rectangle."""
        rows = self.tuples.rectangle_query(
            key_range.low, key_range.high, interval.start, interval.end
        )
        return [TemporalTuple(k, Interval(s, e), v) for (k, s, e, v) in rows]

    def history(self, key: int) -> List[TemporalTuple]:
        """All versions a key ever had, in time order."""
        rows = self.tuples.rectangle_query(key, key + 1, 1,
                                           max(self.now + 1, 2))
        return [TemporalTuple(k, Interval(s, e), v) for (k, s, e, v) in rows]

    # -- maintenance -------------------------------------------------------------------

    def page_count(self) -> int:
        """Total pages across the tuple store and the aggregate trees."""
        return (self.tuples.pool.disk.live_page_count
                + self.aggregates.pool.disk.live_page_count)

    def check_invariants(self) -> None:
        """Audit both underlying structures."""
        self.tuples.check_invariants()
        self.aggregates.check_invariants()

    def save(self, directory: str) -> None:
        """Checkpoint both structures under ``directory``."""
        import os

        self.tuples.save(os.path.join(directory, "tuples"))
        self.aggregates.save(os.path.join(directory, "aggregates"))

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64,
             page_capacity: int = 32) -> "TemporalWarehouse":
        """Reopen a warehouse from :meth:`save` output."""
        import os

        warehouse = cls.__new__(cls)
        warehouse.tuples = MVBT.load(os.path.join(directory, "tuples"),
                                     buffer_pages)
        warehouse.aggregates = RTAIndex.load(
            os.path.join(directory, "aggregates"), buffer_pages
        )
        warehouse.key_space = warehouse.tuples.key_space
        warehouse._page_capacity = warehouse.tuples.config.capacity
        warehouse._wal = None
        warehouse._durable_dir = None
        warehouse.batch_stats = BatchScanStats()
        return warehouse

    # -- durability (checkpoint + write-ahead log) ---------------------------------------

    #: Pointer file naming the live checkpoint directory (atomic flip).
    _CURRENT_FILE = "CURRENT"
    #: Per-checkpoint metadata blob (the WAL sequence it covers).
    _CKPT_META_FILE = "warehouse.json"

    @classmethod
    def current_checkpoint(cls, directory: str
                           ) -> "Tuple[Optional[str], int]":
        """Resolve the live checkpoint of a durable directory.

        Returns ``(checkpoint_dir, covered_seq)`` for the checkpoint the
        ``CURRENT`` pointer names, or ``(None, 0)`` when the directory has
        never been checkpointed.  Read-only: safe to call from a process
        that does not own the directory (WAL-shipping replicas and shard
        cloning use it to rebase onto the owner's latest state).
        """
        import json
        import os

        current_path = os.path.join(directory, cls._CURRENT_FILE)
        if not os.path.exists(current_path):
            return None, 0
        with open(current_path) as fh:
            name = fh.read().strip()
        candidate = os.path.join(directory, "checkpoints", name)
        if not os.path.exists(os.path.join(candidate, "tuples")):
            return None, 0
        last_seq = 0
        meta_path = os.path.join(candidate, cls._CKPT_META_FILE)
        if os.path.exists(meta_path):
            with open(meta_path) as fh:
                last_seq = int(json.load(fh)["wal_last_seq"])
        return candidate, last_seq

    @classmethod
    def open_durable(cls, directory: str, buffer_pages: int = 64,
                     fsync: bool = False,
                     **fresh_kwargs) -> "TemporalWarehouse":
        """Open (or create) a crash-recoverable warehouse at ``directory``.

        If a checkpoint exists it is loaded and the update-log tail is
        replayed (checkpoint + WAL recovery); otherwise a fresh warehouse
        is created with ``fresh_kwargs``.  Every subsequent update is
        logged before acknowledgement; call :meth:`checkpoint`
        periodically to bound the log.

        Recovery is idempotent under any crash point: the live checkpoint
        is named by an atomically-replaced ``CURRENT`` pointer and records
        the WAL sequence it covers, so a kill -9 between "checkpoint
        written" and "log truncated" replays only the genuinely
        uncovered tail (no double-applied updates), while a kill -9
        mid-checkpoint leaves ``CURRENT`` pointing at the previous good
        checkpoint.
        """
        import os

        from repro.storage.wal import WriteAheadLog

        wal = WriteAheadLog(directory, fsync=fsync)
        checkpoint_dir, last_seq = cls.current_checkpoint(directory)
        if checkpoint_dir is None:
            # Legacy layout: a bare in-place "checkpoint" directory whose
            # WAL was truncated at checkpoint time (replay-all is sound).
            legacy = os.path.join(directory, "checkpoint")
            if os.path.exists(os.path.join(legacy, "tuples")):
                checkpoint_dir = legacy
        if checkpoint_dir is not None:
            warehouse = cls.load(checkpoint_dir, buffer_pages)
        else:
            warehouse = cls(**fresh_kwargs)
        wal.bump_seq(last_seq)
        for event in wal.replay(after_seq=last_seq):
            if event.op == "insert":
                warehouse.tuples.insert(event.key, event.value, event.time)
                warehouse.aggregates.insert(event.key, event.value,
                                            event.time)
            else:
                warehouse.tuples.delete(event.key, event.time)
                warehouse.aggregates.delete(event.key, event.time)
        warehouse._wal = wal
        warehouse._durable_dir = directory
        return warehouse

    def checkpoint(self) -> None:
        """Persist the current state and truncate the update log.

        Ordering is the crash-safety contract: (1) write the new
        checkpoint and its covered-WAL-sequence metadata under a fresh
        directory, (2) atomically repoint ``CURRENT`` at it, (3) truncate
        the log, (4) garbage-collect superseded checkpoints.  A crash
        before (2) keeps the old checkpoint live; one between (2) and (3)
        is healed by the sequence-skip in :meth:`open_durable`.
        """
        import json
        import os
        import shutil

        if self._wal is None or self._durable_dir is None:
            raise StorageError(
                "checkpoint() requires a warehouse opened via open_durable"
            )
        covered_seq = self._wal.last_seq
        name = f"ckpt-{covered_seq:020d}"
        checkpoints = os.path.join(self._durable_dir, "checkpoints")
        target = os.path.join(checkpoints, name)
        shutil.rmtree(target, ignore_errors=True)  # stale partial attempt
        self.save(target)
        with open(os.path.join(target, self._CKPT_META_FILE), "w") as fh:
            json.dump({"wal_last_seq": covered_seq}, fh)
        current = os.path.join(self._durable_dir, self._CURRENT_FILE)
        tmp = current + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(name + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, current)
        self._wal.truncate()
        for stale in os.listdir(checkpoints):
            if stale != name:
                shutil.rmtree(os.path.join(checkpoints, stale),
                              ignore_errors=True)
        legacy = os.path.join(self._durable_dir, "checkpoint")
        if os.path.exists(os.path.join(legacy, "tuples")):
            shutil.rmtree(legacy, ignore_errors=True)

    def wal_seq(self) -> int:
        """Highest WAL sequence number this warehouse has appended.

        ``0`` for in-memory warehouses.  The cluster router uses this as
        the acked-write watermark when deciding whether a WAL-shipped
        replica is caught up enough to serve a read-your-writes query.
        """
        return self._wal.last_seq if self._wal is not None else 0

    def attach_wal(self, directory: str, fsync: bool = False,
                   last_seq: int = 0) -> None:
        """Attach an update log, making this warehouse the durable writer
        for ``directory``.

        This is the promotion step of replica failover: a WAL-shipping
        replica that has applied the dead primary's log through
        ``last_seq`` attaches the same directory and continues the
        sequence numbering, so subsequent recoveries replay one unbroken
        history.  No-op protection is the caller's job — attaching two
        live writers to one directory corrupts the log.
        """
        from repro.storage.wal import WriteAheadLog

        wal = WriteAheadLog(directory, fsync=fsync)
        wal.bump_seq(last_seq)
        self._wal = wal
        self._durable_dir = directory
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run on a durable warehouse."""
        return self._closed

    #: Class attribute default so warehouses built via ``cls.__new__``
    #: (:meth:`load`) report ``closed`` correctly without extra wiring.
    _closed = False

    def close(self) -> None:
        """Release the update log handle, if any.  Idempotent."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self._closed = True
