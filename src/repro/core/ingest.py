"""Buffer-tree-style batched ingestion of chronological update streams.

Replaying a warehouse event stream one event at a time costs a full
root-to-leaf traversal per event *and* re-derives per-page search state
(sorted alive mirrors) that the very next event invalidates.  The
:class:`BatchLoader` amortizes both, in the spirit of the persistent buffer
tree: it opens a *batch window* on every index and buffer pool behind a
target, streams a chronologically ordered batch through the target's normal
``insert``/``delete`` API, and closes the window with one coalesced
write-back per touched page (:meth:`~repro.storage.buffer.BufferPool.flush_batch`).

Inside the window the MVSBT/MVBT trees switch to their incremental batch
kernels (see ``MVSBT.begin_batch``), which maintain each touched page's
alive mirror across events instead of rebuilding it per event.  The
resulting page contents are **bit-identical** to event-at-a-time ingestion
— batching changes how records are *found* and when dirty pages are
*written*, never what is stored — so query answers and query-phase I/O
counts are unchanged.  The metamorphic tests in ``tests/core/test_ingest.py``
enforce exactly that.

Supported targets (duck-typed, so wrappers compose):

* :class:`~repro.core.rta.RTAIndex` — every (LKST, LKLT) MVSBT pair;
* :class:`~repro.core.warehouse.TemporalWarehouse` — the tuple MVBT plus
  the RTA index's MVSBTs;
* :class:`~repro.baselines.mvbt_rta.MVBTRTABaseline` — its MVBT;
* :class:`~repro.baselines.naive_scan.HeapFileScanBaseline` — no tree
  kernel (its updates are already O(1)); only pool-level write coalescing;
* a bare ``MVSBT``/``MVBT`` (anything exposing ``begin_batch``/``end_batch``
  next to ``insert``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, NamedTuple, Sequence

from repro.obs.tracer import NULL_TRACER
from repro.storage.buffer import BufferPool

#: Events applied between two coalesced flushes; large enough to amortize
#: the window bookkeeping, small enough to bound dirty-page residency.
DEFAULT_BATCH_SIZE = 1024


class LoadEvent(NamedTuple):
    """The minimal wire form of one update event.

    A plain tuple subtype so event batches cross process boundaries (the
    ``repro.serve`` LOAD op, the procpool worker pipe) as pickle-light
    payloads while still quacking like
    :class:`~repro.workloads.generator.UpdateEvent` for the loader.
    ``value`` is ignored for deletes.
    """

    op: str
    key: int
    value: float
    time: int


def coerce_events(events: Sequence[Any]) -> List[LoadEvent]:
    """Normalize an event batch to :class:`LoadEvent` rows.

    Accepts :class:`LoadEvent`, any object with ``op``/``key``/``value``/
    ``time`` attributes, or bare ``(op, key, value, time)`` sequences (the
    JSON protocol decodes to lists).  Raises :class:`ValueError` on a
    malformed row before anything is applied.
    """
    out: List[LoadEvent] = []
    for row in events:
        if isinstance(row, LoadEvent):
            out.append(row)
        elif hasattr(row, "op"):
            out.append(LoadEvent(row.op, row.key,
                                 getattr(row, "value", 0.0), row.time))
        else:
            try:
                op, key, value, time = row
            except (TypeError, ValueError):
                raise ValueError(f"malformed load event {row!r}") from None
            out.append(LoadEvent(str(op), int(key), float(value), int(time)))
    for event in out:
        if event.op not in ("insert", "delete"):
            raise ValueError(f"unknown event op {event.op!r}")
    return out


@dataclass
class IngestReport:
    """Summary of one :meth:`BatchLoader.load` run."""

    #: Total events applied.
    events: int = 0
    #: Events applied via ``target.insert``.
    inserts: int = 0
    #: Events applied via ``target.delete``.
    deletes: int = 0
    #: Number of chunks (each ended by one coalesced flush).
    batches: int = 0
    #: Dirty pages written across all ``flush_batch`` calls.
    flushed_pages: int = 0
    #: Events absorbed while at least one buffer-tree ingest window was
    #: open (``mode="buffered"``); summable across shard reports.
    buffered_events: int = 0


class BatchLoader:
    """Apply a chronologically ordered event batch through a target index.

    Parameters
    ----------
    target:
        Any object exposing ``insert(key, value, t)`` / ``delete(key, t)``;
        its underlying trees and buffer pools are discovered automatically.
    batch_size:
        Events applied between two coalesced write-backs.
    mode:
        ``"direct"`` (default) uses the incremental batch kernels;
        ``"buffered"`` additionally opens a buffer-tree ingest window
        (:meth:`~repro.mvsbt.tree.MVSBT.begin_buffered`) on every tree
        that supports one.  Buffered trees absorb updates into bounded
        in-page buffers and flush them downward in sorted batches; the
        write-back happens once, streamed at window close, instead of
        once per chunk.  Answers are byte-identical either way.

    The loader is also a context manager: entering opens the batch window
    (on every discovered tree and pool) for manual event application,
    leaving closes it and flushes.  :meth:`load` manages the window itself.
    """

    def __init__(self, target: Any,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 mode: str = "direct") -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if mode not in ("direct", "buffered"):
            raise ValueError(f"unknown ingest mode {mode!r}")
        self.target = target
        self.batch_size = batch_size
        self.mode = mode
        self._trees = _discover_trees(target)
        self._pools = _discover_pools(target, self._trees)
        self._buffered: List[Any] = []

    # -- window management ------------------------------------------------------

    def __enter__(self) -> "BatchLoader":
        self._buffered = []
        for tree in self._trees:
            if self.mode == "buffered" and hasattr(tree, "begin_buffered"):
                try:
                    tree.begin_buffered()
                except ValueError:
                    # A buffered window is already open on this tree
                    # (nested loaders); fall back to the batch kernel —
                    # inserts route through the outer window's buffer.
                    tree.begin_batch()
                else:
                    self._buffered.append(tree)
                    continue
            tree.begin_batch()
        for pool in self._pools:
            pool.begin_batch()
        return self

    def __exit__(self, *exc: object) -> None:
        buffered, self._buffered = self._buffered, []
        for pool in self._pools:
            pool.end_batch()
        for tree in self._trees:
            if tree in buffered:
                tree.end_buffered()
            else:
                tree.end_batch()

    # -- bulk application -------------------------------------------------------

    def load(self, events: Iterable[Any]) -> IngestReport:
        """Apply ``events`` (non-decreasing ``time``) in coalesced chunks.

        Each event needs ``op`` (``"insert"``/``"delete"``), ``key``,
        ``value`` and ``time`` attributes (:class:`~repro.workloads.generator.UpdateEvent`
        qualifies).  Raises :class:`ValueError` on an out-of-order timestamp
        or unknown ``op`` before the offending event is applied.
        """
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span("ingest.load", batch_size=self.batch_size):
                return self._load(events)
        return self._load(events)

    def _tracer(self):
        """The tracer shared by the discovered pools (null when detached)."""
        return self._pools[0].tracer if self._pools else NULL_TRACER

    def _load(self, events: Iterable[Any]) -> IngestReport:
        """The chunking loop behind :meth:`load`."""
        report = IngestReport()
        with self:
            chunk: List[Any] = []
            last_time = None
            for event in events:
                if last_time is not None and event.time < last_time:
                    raise ValueError(
                        f"event stream not chronological: t={event.time} "
                        f"after t={last_time}"
                    )
                if event.op not in ("insert", "delete"):
                    raise ValueError(f"unknown event op {event.op!r}")
                last_time = event.time
                chunk.append(event)
                if len(chunk) >= self.batch_size:
                    self._apply_chunk(chunk, report)
                    chunk = []
            if chunk:
                self._apply_chunk(chunk, report)
        return report

    def _apply_chunk(self, chunk: List[Any], report: IngestReport) -> None:
        # Buffered windows defer all write-back to the streaming flush at
        # window close; a per-chunk flush would write sealed pages that
        # the very next chunk dirties again.
        flush = not self._buffered
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span("ingest.chunk", events=len(chunk)):
                self._apply_events(chunk, report)
                if flush:
                    with tracer.span("ingest.flush"):
                        self._flush_pools(report)
            return
        self._apply_events(chunk, report)
        if flush:
            self._flush_pools(report)

    def _apply_events(self, chunk: List[Any], report: IngestReport) -> None:
        """Route one chunk's events through the target's update API."""
        target = self.target
        for event in chunk:
            if event.op == "insert":
                target.insert(event.key, event.value, event.time)
                report.inserts += 1
            else:
                target.delete(event.key, event.time)
                report.deletes += 1
        report.events += len(chunk)
        report.batches += 1
        if self._buffered:
            report.buffered_events += len(chunk)

    def _flush_pools(self, report: IngestReport) -> None:
        """One coalesced write-back per discovered pool."""
        for pool in self._pools:
            report.flushed_pages += pool.flush_batch()


def batch_replay(target: Any, events: Iterable[Any],
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 mode: str = "direct") -> IngestReport:
    """One-shot convenience: ``BatchLoader(target, batch_size, mode).load(events)``."""
    return BatchLoader(target, batch_size, mode=mode).load(events)


def _discover_trees(target: Any) -> List[Any]:
    """Batchable trees behind ``target`` (duck-typed, order-stable)."""
    trees: List[Any] = []
    # A bare MVSBT/MVBT passed directly.
    if hasattr(target, "begin_batch") and hasattr(target, "insert"):
        trees.append(target)
    # RTAIndex: every (LKST, LKLT) pair.
    if callable(getattr(target, "trees", None)):
        for lkst, lklt in target.trees().values():
            trees.extend((lkst, lklt))
    # TemporalWarehouse: the tuple MVBT plus the RTA index's MVSBTs.
    tuples = getattr(target, "tuples", None)
    if hasattr(tuples, "begin_batch"):
        trees.append(tuples)
    aggregates = getattr(target, "aggregates", None)
    if callable(getattr(aggregates, "trees", None)):
        for lkst, lklt in aggregates.trees().values():
            trees.extend((lkst, lklt))
    # MVBTRTABaseline: the wrapped MVBT.
    tree = getattr(target, "tree", None)
    if hasattr(tree, "begin_batch"):
        trees.append(tree)
    return trees


def _discover_pools(target: Any, trees: List[Any]) -> List[BufferPool]:
    """Unique buffer pools behind ``target`` and its trees."""
    pools: dict[int, BufferPool] = {}
    for owner in [target, *trees]:
        pool = getattr(owner, "pool", None)
        if isinstance(pool, BufferPool):
            pools.setdefault(id(pool), pool)
    return list(pools.values())
