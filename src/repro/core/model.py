"""Temporal data model: intervals, key ranges, rectangles, temporal tuples.

Conventions (section 2.3 of the paper, adapted to half-open arithmetic):

* Keys and time instants are positive integers.  The key space is
  ``[1, MAX_KEY]`` and the time space ``[1, MAX_TIME]``.
* Internally *all* intervals and ranges are half-open: ``Interval(s, e)``
  covers the instants ``s, s+1, ..., e-1``.  The paper writes closed
  ``[start, end]`` intervals where ``end = start + 1`` denotes an instant;
  that is exactly the half-open ``[start, end)`` reading used here, so the
  mapping is the identity.
* ``NOW`` is the sentinel for "still alive" interval ends in the
  transaction-time model (the paper stores ``now`` as ``maxtime``).
* First temporal normal form (1TNF): no two tuples share a key while their
  intervals intersect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import QueryError

#: Default bounds of the paper's experimental key/time spaces.
MAX_KEY = 10**9
MAX_TIME = 10**8

#: Sentinel meaning "the ever-increasing current time"; strictly larger than
#: any real timestamp so half-open comparisons need no special cases.
NOW = 2**62


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open time interval ``[start, end)``.

    ``end == NOW`` marks an alive (not yet logically deleted) record.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise QueryError(f"empty interval [{self.start}, {self.end})")

    def contains(self, t: int) -> bool:
        """True when instant ``t`` lies inside the interval."""
        return self.start <= t < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one instant."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The shared sub-interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        return Interval(lo, hi) if lo < hi else None

    @property
    def is_instant(self) -> bool:
        """True for a single-instant interval (paper: ``end = start + 1``)."""
        return self.end == self.start + 1

    @property
    def alive(self) -> bool:
        """True when the interval extends to ``NOW``."""
        return self.end == NOW

    @property
    def length(self) -> int:
        return self.end - self.start

    def instants(self) -> Iterator[int]:
        """Iterate the instants covered (small intervals only; test oracles)."""
        return iter(range(self.start, self.end))

    def __str__(self) -> str:
        end = "now" if self.end == NOW else str(self.end)
        return f"[{self.start},{end})"


@dataclass(frozen=True, order=True)
class KeyRange:
    """Half-open key range ``[low, high)``; a single key is ``[k, k+1)``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise QueryError(f"empty key range [{self.low}, {self.high})")

    @classmethod
    def single(cls, key: int) -> "KeyRange":
        """The degenerate range holding exactly ``key``."""
        return cls(key, key + 1)

    def contains(self, key: int) -> bool:
        """True when ``key`` lies inside the range."""
        return self.low <= key < self.high

    def contains_range(self, other: "KeyRange") -> bool:
        """True when ``other`` lies entirely inside this range."""
        return self.low <= other.low and other.high <= self.high

    def intersects(self, other: "KeyRange") -> bool:
        """True when the two ranges share at least one key."""
        return self.low < other.high and other.low < self.high

    def intersection(self, other: "KeyRange") -> Optional["KeyRange"]:
        """The shared sub-range, or ``None`` when disjoint."""
        lo = max(self.low, other.low)
        hi = min(self.high, other.high)
        return KeyRange(lo, hi) if lo < hi else None

    def is_lower_than(self, other: "KeyRange") -> bool:
        """Paper's order on disjoint ranges: ``self.high <= other.low``."""
        return self.high <= other.low

    @property
    def is_single_key(self) -> bool:
        return self.high == self.low + 1

    @property
    def width(self) -> int:
        return self.high - self.low

    def __str__(self) -> str:
        return f"[{self.low},{self.high})"


@dataclass(frozen=True)
class Rectangle:
    """A key range crossed with a time interval (query region or record extent)."""

    range: KeyRange
    interval: Interval

    def contains_point(self, key: int, t: int) -> bool:
        """True when the key-time point lies inside the rectangle."""
        return self.range.contains(key) and self.interval.contains(t)

    def intersects(self, other: "Rectangle") -> bool:
        """True when the rectangles overlap in both dimensions."""
        return self.range.intersects(other.range) and self.interval.intersects(
            other.interval
        )

    @property
    def area(self) -> int:
        return self.range.width * self.interval.length

    def __str__(self) -> str:
        return f"{self.range}x{self.interval}"


@dataclass(frozen=True)
class TemporalTuple:
    """One warehouse tuple: key, validity interval, and the aggregated value.

    A tuple *is in* rectangle ``R`` when its key lies in ``R.range`` and its
    interval intersects ``R.interval`` (the paper's membership definition,
    which drives the RTA semantics).
    """

    key: int
    interval: Interval
    value: float

    @property
    def alive(self) -> bool:
        return self.interval.alive

    def in_rectangle(self, rect: Rectangle) -> bool:
        """The paper's membership test: key inside, interval intersects."""
        return rect.range.contains(self.key) and self.interval.intersects(
            rect.interval
        )

    def __str__(self) -> str:
        return f"(key={self.key}, {self.interval}, value={self.value})"


def validate_query_rectangle(range_: KeyRange, interval: Interval,
                             max_key: int = MAX_KEY,
                             max_time: int = MAX_TIME) -> None:
    """Reject rectangles outside the configured key/time spaces."""
    if range_.low < 1 or range_.high > max_key + 1:
        raise QueryError(
            f"key range {range_} outside key space [1, {max_key}]"
        )
    if interval.start < 1 or (interval.end > max_time + 1 and interval.end != NOW):
        raise QueryError(
            f"interval {interval} outside time space [1, {max_time}]"
        )
