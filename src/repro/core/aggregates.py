"""Aggregate descriptors: SUM, COUNT, AVG (and MIN/MAX for the SB-tree extension).

The paper's RTA structures natively maintain *additive* aggregates: values
form a commutative group (combine with ``+``, invert with unary ``-``), which
is what makes the Theorem 1 inclusion–exclusion reduction and the MVSBT's
negative-value deletions work.  SUM and COUNT are additive; AVG is derived as
SUM/COUNT at query time.

MIN and MAX are *not* additive (no inverse), so the main MVSBT cannot
maintain them — the paper lists range MIN/MAX as open problem (ii).  They are
included here as semigroup descriptors for the scalar min/max SB-tree variant
(:mod:`repro.sbtree.minmax`), which supports insertions only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Aggregate:
    """Descriptor of an aggregate function over tuple values.

    Attributes
    ----------
    name:
        Human-readable tag used in reports and benchmark tables.
    identity:
        Neutral element of ``combine``.
    combine:
        Binary associative operation merging two partial aggregates.
    additive:
        True when ``combine`` has an inverse (``+``/``-``), i.e. the
        aggregate can be maintained by the MVSBT/SB-tree machinery with
        logical deletions expressed as negative insertions.
    lift:
        Maps one tuple's value to its contribution (COUNT lifts to 1).
    """

    name: str
    identity: float
    combine: Callable[[float, float], float]
    additive: bool
    lift: Callable[[float], float]

    def __str__(self) -> str:
        return self.name


def _add(a: float, b: float) -> float:
    return a + b


SUM = Aggregate(name="SUM", identity=0, combine=_add, additive=True,
                lift=lambda v: v)
COUNT = Aggregate(name="COUNT", identity=0, combine=_add, additive=True,
                  lift=lambda v: 1)
MIN = Aggregate(name="MIN", identity=float("inf"), combine=min,
                additive=False, lift=lambda v: v)
MAX = Aggregate(name="MAX", identity=float("-inf"), combine=max,
                additive=False, lift=lambda v: v)

#: AVG is derived: the RTA layer computes SUM and COUNT and divides.
#: The descriptor exists so callers can *name* the aggregate uniformly.
AVG = Aggregate(name="AVG", identity=0, combine=_add, additive=True,
                lift=lambda v: v)

ADDITIVE_AGGREGATES = (SUM, COUNT, AVG)
ORDER_AGGREGATES = (MIN, MAX)
