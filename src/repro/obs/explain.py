"""EXPLAIN: run a query under a tracer and render the span tree as a plan.

``explain_query(warehouse, key_range, interval, aggregate)`` produces an
:class:`ExplainReport` — the planner's :class:`~repro.core.warehouse.QueryPlan`
decision, the executed result, and the full span tree with per-node I/O and
CPU.  :func:`render_span_tree` turns any span into the indented ASCII form
the TQL shell prints for ``EXPLAIN SELECT ...``::

    explain aggregate=SUM                       [ios=9 reads=9 ... ]
      plan choice=mvsbt                         [ios=4 ...]
        rta.point tree=lkst k=900 t=699          ...
          mvsbt.query key=900 t=699
            mvsbt.page page=12 level=1 kind=index
              buffer.miss page=12
              disk.read page=12

Each node shows the I/O delta accumulated *while it was open* (inclusive
of children) and its CPU; leaf ``mvsbt.page`` spans therefore sum exactly
to the query's ``IOStats.total_ios``, the property the paper's entire
evaluation rests on and the acceptance test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional

from repro.obs.attach import traced
from repro.obs.tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.aggregates import Aggregate
    from repro.core.model import Interval, KeyRange
    from repro.core.warehouse import QueryPlan, TemporalWarehouse


def _format_attrs(span: Span) -> str:
    return " ".join(f"{key}={value}" for key, value in span.attrs.items())


def _format_cost(span: Span) -> str:
    io = span.io
    parts = [f"ios={io.total_ios}", f"reads={io.reads}"]
    if io.writes:
        parts.append(f"writes={io.writes}")
    parts.append(f"logical={io.logical_reads}")
    parts.append(f"cpu={span.cpu_s * 1e3:.3f}ms")
    return "[" + " ".join(parts) + "]"


def render_span_tree(span: Span, indent: int = 0,
                     show_events: bool = True) -> str:
    """Indented ASCII rendering of a span tree with per-node I/O and CPU.

    Events (zero-duration spans with no I/O snapshot) render without the
    cost suffix; pass ``show_events=False`` to drop them entirely.
    """
    pad = "  " * indent
    head = span.name if not span.attrs else f"{span.name} {_format_attrs(span)}"
    is_event = span.cpu_s == 0.0 and not span.children \
        and not span.io_by_source
    line = f"{pad}{head}" if is_event else f"{pad}{head}  {_format_cost(span)}"
    lines: List[str] = [line]
    for child in span.children:
        child_is_event = child.cpu_s == 0.0 and not child.children \
            and not child.io_by_source
        if child_is_event and not show_events:
            continue
        lines.append(render_span_tree(child, indent + 1, show_events))
    return "\n".join(lines)


@dataclass
class ExplainReport:
    """Everything EXPLAIN learned about one query.

    ``plan`` is the cost-based planner's decision, ``result`` the value the
    executed plan produced, and ``root`` the span tree of the whole
    operation (planning included).  ``str()`` renders the ASCII plan.
    """

    plan: "QueryPlan"
    result: Any
    root: Span
    tracer: Tracer
    #: Per-query cache outcome when the warehouse has read-path caching
    #: attached: result-cache probe (``hit``/``miss``), memo and decoded
    #: hit deltas for this query, and the buffer-pool hit rate derived
    #: from the span tree's logical-vs-physical read counts.
    cache: Optional[dict] = None

    def render(self, show_events: bool = True) -> str:
        """The plan header plus the indented span tree."""
        header = [
            f"plan: {self.plan}",
            f"result: {self.result}",
            f"total: ios={self.root.total_ios} "
            f"reads={self.root.io.reads} writes={self.root.io.writes} "
            f"logical={self.root.io.logical_reads} "
            f"cpu={self.root.cpu_s * 1e3:.3f}ms",
        ]
        if self.cache is not None:
            bits = []
            for name, value in self.cache.items():
                if name.endswith("_rate"):
                    value = "n/a" if value is None else f"{value * 100:.1f}%"
                bits.append(f"{name}={value}")
            header.append("cache: " + " ".join(bits))
        return "\n".join(header) + "\n" + render_span_tree(
            self.root, show_events=show_events)

    def __str__(self) -> str:
        return self.render()


def explain_query(warehouse: "TemporalWarehouse",
                  key_range: "KeyRange", interval: "Interval",
                  aggregate: Optional["Aggregate"] = None) -> ExplainReport:
    """Plan, trace, and execute one aggregate query against ``warehouse``.

    A fresh tracer is attached for the duration (previous wiring is
    restored), the planner runs inside a ``plan`` span (its COUNT probe
    I/Os are visible), and the chosen plan executes inside an ``execute``
    span via :meth:`~repro.core.warehouse.TemporalWarehouse.run_plan`.
    """
    from repro.core.aggregates import SUM

    aggregate = aggregate if aggregate is not None else SUM
    probe = getattr(warehouse, "cache_probe", None)
    outcome = probe(key_range, interval, aggregate) if probe else None
    before = warehouse.cache_snapshot() if outcome is not None else None
    with traced(warehouse) as tracer:
        with tracer.span("explain", aggregate=aggregate.name,
                         key_range=str(key_range),
                         interval=str(interval)) as root:
            with tracer.span("plan"):
                plan = warehouse.explain(key_range, interval, aggregate)
            tracer.current.attrs["choice"] = plan.plan
            if outcome is not None:
                root.attrs["cache"] = outcome
            with tracer.span("execute", plan=plan.plan):
                result = warehouse.run_plan(plan, key_range, interval,
                                            aggregate)
    cache_info = None
    if outcome is not None:
        after = warehouse.cache_snapshot()
        logical = root.io.logical_reads
        cache_info = {
            "result": outcome,
            "memo_hits": (after.memo.get("hits", 0)
                          - before.memo.get("hits", 0)),
            "decoded_hits": (after.decoded.get("hits", 0)
                             - before.decoded.get("hits", 0)),
            "buffer_hit_rate": ((logical - root.io.reads) / logical
                                if logical else None),
        }
    return ExplainReport(plan=plan, result=result, root=root, tracer=tracer,
                         cache=cache_info)
