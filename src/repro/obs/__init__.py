"""repro.obs — zero-cost-when-disabled observability for the MVSBT stack.

The paper's evaluation metric is *counted* I/Os, so this package makes the
counting inspectable end to end:

* :mod:`repro.obs.tracer` — hierarchical spans with exact
  :class:`~repro.storage.stats.IOStats` deltas and CPU per node; a single
  RTA query yields query → plan/execute → tree descent → per-level page
  access → buffer hit/miss → physical read.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with
  JSON and Prometheus text export, published into by the buffer pool and
  the trees.
* :mod:`repro.obs.explain` — ``EXPLAIN``: run a query under a tracer and
  render the span tree as an indented ASCII plan.
* :mod:`repro.obs.tracefile` — JSONL trace records, their frozen schema,
  and a dependency-free validator.
* :mod:`repro.obs.collect` — the bench harness's per-phase record
  collector behind ``python -m repro.bench --trace``.
* :mod:`repro.obs.attach` — wiring helpers (:func:`traced`,
  :func:`attach_tracer`, :func:`attach_metrics`) that discover every pool,
  disk, and tree behind a warehouse/index/tree.

Everything is off by default: instrumented objects point at the shared
:data:`NULL_TRACER` and hold no metrics, and the invariance tests assert
the disabled paths leave page images and I/O counters bit-identical.
Names are re-exported lazily (PEP 562) because the storage layer imports
:mod:`repro.obs.tracer` — eager re-exports here would cycle.
"""

from __future__ import annotations

from typing import Any

#: name -> submodule providing it; resolved on first attribute access.
_EXPORTS = {
    "Span": "repro.obs.tracer",
    "Tracer": "repro.obs.tracer",
    "NullTracer": "repro.obs.tracer",
    "NULL_TRACER": "repro.obs.tracer",
    "Counter": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "ServerMetrics": "repro.obs.metrics",
    "snapshot_into": "repro.obs.metrics",
    "attach_tracer": "repro.obs.attach",
    "attach_metrics": "repro.obs.attach",
    "detach_metrics": "repro.obs.attach",
    "detach_tracer": "repro.obs.attach",
    "traced": "repro.obs.attach",
    "ExplainReport": "repro.obs.explain",
    "explain_query": "repro.obs.explain",
    "render_span_tree": "repro.obs.explain",
    "TRACE_RECORD_SCHEMA": "repro.obs.tracefile",
    "TraceSchemaError": "repro.obs.tracefile",
    "span_to_record": "repro.obs.tracefile",
    "validate_record": "repro.obs.tracefile",
    "write_trace": "repro.obs.tracefile",
    "read_trace": "repro.obs.tracefile",
    "iter_records": "repro.obs.tracefile",
    "BenchCollector": "repro.obs.collect",
    "collecting": "repro.obs.collect",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return __all__
