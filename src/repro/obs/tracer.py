"""Hierarchical span tracing with exact I/O and CPU attribution.

The paper's evaluation is a *counting* argument — estimated time is
``I/Os x 10 ms + CPU`` — so the tracer's job is to say *which* page
accesses a query paid for, not to time wall clocks.  A :class:`Span` is
one step of an operation (a query, one level of a tree descent, a buffer
flush); spans nest into a tree, and every span carries

* the :class:`~repro.storage.stats.IOStats` delta accumulated while it was
  open (summed over every pool the tracer watches, per-pool on request),
* process CPU seconds (inclusive of children; renderers subtract), and
* free-form attributes (``page=17, level=2, hit=False``).

Instrumentation sites throughout the library hold a reference to a tracer
(the shared :data:`NULL_TRACER` by default) and guard every emission with
``tracer.enabled`` — one attribute load and a branch, so the disabled path
perturbs nothing: page images, tree counters, and every ``IOStats``
counter stay bit-identical to an uninstrumented run, which the
``tests/obs`` invariance suite enforces.  An *enabled* tracer only ever
reads counters and buffer residency; it never fetches a page, so it adds
zero physical I/Os.

Use :func:`repro.obs.attach_tracer` (or the :func:`repro.obs.traced`
context manager) to wire a tracer into a warehouse, index, or bare tree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.stats import IOStats

# IOStats is imported lazily (inside the two functions that construct one)
# so this module stays import-cycle-free: the storage layer imports the
# tracer for NULL_TRACER, and any entry point that pulls the tracer in
# first (e.g. ``repro.obs.tracefile``) must not re-enter
# ``repro.storage.__init__`` while it is still initializing.


class Span:
    """One node of a trace tree: name, attributes, children, I/O + CPU.

    ``io`` and ``io_by_source`` are populated when the span closes; events
    (zero-duration leaf spans from :meth:`Tracer.event`) carry neither.
    """

    __slots__ = ("name", "attrs", "children", "cpu_s", "io", "io_by_source",
                 "_cpu_start", "_io_before")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        from repro.storage.stats import IOStats

        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []
        self.cpu_s: float = 0.0
        #: Summed I/O delta over every watched pool while the span was open.
        self.io: IOStats = IOStats()
        #: Per-pool I/O deltas, keyed by the label given to :meth:`Tracer.watch`.
        self.io_by_source: Dict[str, IOStats] = {}
        self._cpu_start: float = 0.0
        self._io_before: List[Tuple[str, IOStats]] = []

    @property
    def total_ios(self) -> int:
        """Physical I/Os (reads + writes) charged while this span was open."""
        return self.io.total_ios

    def self_cpu_s(self) -> float:
        """CPU seconds spent in this span excluding its child spans."""
        return max(0.0, self.cpu_s - sum(c.cpu_s for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span in this subtree with the given name."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, ios={self.total_ios}, "
                f"children={len(self.children)})")


class Tracer:
    """Collects span trees from instrumented code paths.

    Parameters
    ----------
    clock:
        Callable returning CPU seconds; defaults to :func:`time.process_time`
        (user + system, the paper's CPU metric).  Injectable for tests.

    A tracer is *enabled* from construction; instrumentation sites check the
    ``enabled`` attribute before doing any work, so the shared
    :data:`NULL_TRACER` (whose ``enabled`` is False) costs one branch.
    Spans opened while another span is open become its children; spans
    opened at top level are collected in ``roots``.
    """

    enabled = True

    def __init__(self, clock=time.process_time) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._clock = clock
        self._sources: List[Tuple[str, IOStats]] = []

    # -- wiring ------------------------------------------------------------------

    def watch(self, label: str, stats: IOStats) -> None:
        """Attribute ``stats``'s counter movement to every future span.

        Watching the same object twice (e.g. two trees sharing one pool)
        is a no-op, so attach helpers need not deduplicate.
        """
        if any(existing is stats for _, existing in self._sources):
            return
        self._sources.append((label, stats))

    @property
    def sources(self) -> Tuple[str, ...]:
        """Labels of the watched :class:`IOStats` objects, in watch order."""
        return tuple(label for label, _ in self._sources)

    # -- span API ----------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block."""
        span = Span(name, attrs)
        span._io_before = [(label, stats.snapshot())
                           for label, stats in self._sources]
        span._cpu_start = self._clock()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            from repro.storage.stats import IOStats

            self._stack.pop()
            span.cpu_s = self._clock() - span._cpu_start
            total = IOStats()
            for label, before in span._io_before:
                stats = next(s for lbl, s in self._sources if lbl == label)
                delta = stats.delta(before)
                span.io_by_source[label] = delta
                total = total + delta
            span.io = total
            span._io_before = []

    def event(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration leaf span under the current span.

        Events carry attributes only (no I/O snapshot), which keeps them
        cheap enough for per-page-access emission on hot paths.
        """
        span = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Drop every collected span (watched sources are kept)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer while spans are open")
        self.roots = []

    @property
    def last_root(self) -> Optional[Span]:
        """The most recently completed top-level span, if any."""
        return self.roots[-1] if self.roots else None


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) is the default value of
    every ``tracer`` attribute in the library, so instrumentation sites can
    unconditionally read ``self.tracer.enabled`` without None checks.
    """

    enabled = False
    roots: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """No-op context manager (kept for call-site symmetry)."""
        yield None

    def event(self, name: str, **attrs: Any) -> None:
        """No-op."""
        return None

    def watch(self, label: str, stats: IOStats) -> None:
        """No-op."""
        return None

    @property
    def current(self) -> None:
        """Always None: a disabled tracer holds no spans."""
        return None


#: The process-wide disabled tracer every instrumented object defaults to.
NULL_TRACER = NullTracer()
