"""JSONL trace records: serialization, schema, and validation.

One trace record is one measured operation — a span tree from the tracer,
or a flat per-phase record from the bench harness — serialized as a single
JSON object per line.  The record shape is frozen in
:data:`TRACE_RECORD_SCHEMA` (a checked-in copy lives at
``docs/trace_schema.json``; CI fails if the two drift), and
:func:`validate_record` enforces it with a dependency-free validator
covering the JSON-Schema subset the schema uses.

Record shape::

    {"name": "bench.queries",            # span/operation name
     "attrs": {"experiment": "fig4b"},   # free-form string-keyed attrs
     "reads": 612, "writes": 0,          # physical I/O delta
     "logical_reads": 1800,              # buffer accesses
     "cpu_s": 0.031,                     # process CPU seconds
     "children": [...]}                  # nested spans (optional)
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.tracer import Span

#: The frozen JSONL record schema (JSON-Schema subset: ``type``,
#: ``required``, ``properties``, ``items``, ``additionalProperties``).
#: ``docs/trace_schema.json`` is the checked-in copy; ``python -m
#: repro.analyze schema --check docs/trace_schema.json`` verifies they match.
TRACE_RECORD_SCHEMA: Dict[str, Any] = {
    "$id": "repro-trace-record",
    "title": "repro trace record",
    "type": "object",
    "required": ["name", "reads", "writes", "logical_reads", "cpu_s"],
    "properties": {
        "name": {"type": "string"},
        "attrs": {"type": "object"},
        "reads": {"type": "integer"},
        "writes": {"type": "integer"},
        "logical_reads": {"type": "integer"},
        "cpu_s": {"type": "number"},
        "children": {"type": "array", "items": {"$ref": "#"}},
    },
    "additionalProperties": False,
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


class TraceSchemaError(ValueError):
    """A trace record (or schema file) violates :data:`TRACE_RECORD_SCHEMA`."""


def _check(value: Any, schema: Dict[str, Any], path: str) -> None:
    if schema.get("$ref") == "#":
        schema = TRACE_RECORD_SCHEMA
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(value, py_type)
        if expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            raise TraceSchemaError(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
    if expected == "object":
        for required in schema.get("required", ()):
            if required not in value:
                raise TraceSchemaError(f"{path}: missing key {required!r}")
        properties = schema.get("properties")
        if properties is not None:
            if schema.get("additionalProperties") is False:
                extra = set(value) - set(properties)
                if extra:
                    raise TraceSchemaError(
                        f"{path}: unexpected keys {sorted(extra)}"
                    )
            for key, sub in properties.items():
                if key in value:
                    _check(value[key], sub, f"{path}.{key}")
    elif expected == "array":
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                _check(item, items, f"{path}[{i}]")


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one parsed record against the schema; returns it unchanged.

    Raises :class:`TraceSchemaError` naming the offending path otherwise.
    """
    _check(record, TRACE_RECORD_SCHEMA, "$")
    return record


def span_to_record(span: Span) -> Dict[str, Any]:
    """Serialize a span tree into the JSONL record shape (recursively)."""
    record: Dict[str, Any] = {
        "name": span.name,
        "attrs": {str(k): _json_safe(v) for k, v in span.attrs.items()},
        "reads": span.io.reads,
        "writes": span.io.writes,
        "logical_reads": span.io.logical_reads,
        "cpu_s": span.cpu_s,
    }
    if span.children:
        record["children"] = [span_to_record(c) for c in span.children]
    return record


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


RecordLike = Union[Span, Dict[str, Any]]


def write_trace(records: Iterable[RecordLike], target: Union[str, IO[str]]
                ) -> int:
    """Write records (spans or dicts) as JSONL; returns the line count.

    ``target`` is a path or an open text file.  Every record is validated
    on the way out, so an emitted trace always conforms to the schema.
    """
    def emit(fh: IO[str]) -> int:
        count = 0
        for record in records:
            if isinstance(record, Span):
                record = span_to_record(record)
            validate_record(record)
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        return count

    if isinstance(target, (str, os.PathLike)):
        with open(target, "w") as fh:
            return emit(fh)
    return emit(target)


#: Queue sentinel telling an async sink's writer thread to exit.
_SINK_CLOSE = object()


class TraceSink:
    """Append-only rotating JSONL sink for sampled server traces.

    The serving stack emits one record per sampled request from whatever
    thread finished it, so appends are serialized under a lock and every
    record is validated on the way out — a sink file always conforms to
    :data:`TRACE_RECORD_SCHEMA`.  When the active file would exceed
    ``max_bytes`` it is rotated to ``<path>.1`` (replacing any previous
    rotation), bounding disk use at roughly two generations.

    ``async_writes=True`` moves validation, serialization, and the disk
    append onto a dedicated writer thread: :meth:`write` only enqueues,
    so a latency-sensitive caller (the server's event loop) never blocks
    on JSON encoding or disk.  The queue is bounded; when the writer
    falls behind, new records are *dropped* (counted in :attr:`dropped`)
    rather than stalling request handling — telemetry must never become
    the bottleneck it exists to find.  :meth:`close` drains whatever was
    already enqueued before closing the file.

    ``validate=False`` skips the per-record schema check, for producers
    that emit via :func:`span_to_record` and therefore conform by
    construction (the server); readers still validate on load, so a
    malformed file cannot slip through an analysis pipeline.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 max_bytes: int = 64 * 1024 * 1024,
                 async_writes: bool = False,
                 queue_entries: int = 1024,
                 validate: bool = True) -> None:
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.validate = validate
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = open(self.path, "a")
        self._size = self._fh.tell()
        self.written = 0
        self.rotations = 0
        #: Records rejected because the async queue was full (or a queued
        #: record failed validation after the caller had moved on).
        self.dropped = 0
        self._closed = False
        self._queue: Optional["queue.Queue"] = None
        self._thread: Optional[threading.Thread] = None
        if async_writes:
            import queue

            self._queue = queue.Queue(maxsize=queue_entries)
            self._thread = threading.Thread(
                target=self._drain, name="trace-sink", daemon=True)
            self._thread.start()

    def write(self, record: RecordLike) -> None:
        """Append one record (span or dict); thread-safe.

        Synchronous sinks validate and hit the disk before returning;
        async sinks enqueue and return immediately (dropping the record
        if the queue is full).  Raises :class:`ValueError` once closed.
        """
        if self._closed:
            raise ValueError("TraceSink is closed")
        if self._queue is not None:
            import queue

            try:
                self._queue.put_nowait(record)
            except queue.Full:
                self.dropped += 1
            return
        self._write_now(record)

    def _write_now(self, record: RecordLike, flush: bool = True) -> None:
        if isinstance(record, Span):
            record = span_to_record(record)
        if self.validate:
            validate_record(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._fh is None:
                raise ValueError("TraceSink is closed")
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            if flush:
                self._fh.flush()
            self._size += len(line)
            self.written += 1

    def _rotate(self) -> None:
        """Move the active file to ``<path>.1`` (replacing any previous
        rotation) and start a fresh one.  Caller holds the lock."""
        self._fh.close()
        os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "a")
        self._size = 0
        self.rotations += 1

    def _flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def _drain(self) -> None:
        """Writer-thread loop: dequeue until the close sentinel arrives.

        Bursts are written with one flush at the end instead of one per
        record.  A record that fails validation or serialization is
        counted in :attr:`dropped` — the thread must survive one bad
        record."""
        import queue

        while True:
            item = self._queue.get()
            while True:
                if item is _SINK_CLOSE:
                    self._flush()
                    return
                try:
                    self._write_now(item, flush=False)
                except Exception:  # noqa: BLE001 — writer thread must not die
                    self.dropped += 1
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            self._flush()

    def close(self) -> None:
        """Flush and close; further writes raise.

        An async sink finishes writing everything already enqueued first.
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._queue.put(_SINK_CLOSE)
            self._thread.join(timeout=30.0)
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_trace(path: str, validate: bool = True) -> List[Dict[str, Any]]:
    """Load a JSONL trace file (optionally validating every record)."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{number}: not JSON: {exc}"
                ) from None
            if validate:
                try:
                    validate_record(record)
                except TraceSchemaError as exc:
                    raise TraceSchemaError(f"{path}:{number}: {exc}") from None
            records.append(record)
    return records


def iter_records(records: Iterable[Dict[str, Any]]
                 ) -> Iterator[Dict[str, Any]]:
    """Yield every record and nested child record, depth-first."""
    for record in records:
        yield record
        yield from iter_records(record.get("children", ()))
