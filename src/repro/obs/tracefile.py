"""JSONL trace records: serialization, schema, and validation.

One trace record is one measured operation — a span tree from the tracer,
or a flat per-phase record from the bench harness — serialized as a single
JSON object per line.  The record shape is frozen in
:data:`TRACE_RECORD_SCHEMA` (a checked-in copy lives at
``docs/trace_schema.json``; CI fails if the two drift), and
:func:`validate_record` enforces it with a dependency-free validator
covering the JSON-Schema subset the schema uses.

Record shape::

    {"name": "bench.queries",            # span/operation name
     "attrs": {"experiment": "fig4b"},   # free-form string-keyed attrs
     "reads": 612, "writes": 0,          # physical I/O delta
     "logical_reads": 1800,              # buffer accesses
     "cpu_s": 0.031,                     # process CPU seconds
     "children": [...]}                  # nested spans (optional)
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Dict, Iterable, Iterator, List, Union

from repro.obs.tracer import Span

#: The frozen JSONL record schema (JSON-Schema subset: ``type``,
#: ``required``, ``properties``, ``items``, ``additionalProperties``).
#: ``docs/trace_schema.json`` is the checked-in copy; ``python -m
#: repro.analyze schema --check docs/trace_schema.json`` verifies they match.
TRACE_RECORD_SCHEMA: Dict[str, Any] = {
    "$id": "repro-trace-record",
    "title": "repro trace record",
    "type": "object",
    "required": ["name", "reads", "writes", "logical_reads", "cpu_s"],
    "properties": {
        "name": {"type": "string"},
        "attrs": {"type": "object"},
        "reads": {"type": "integer"},
        "writes": {"type": "integer"},
        "logical_reads": {"type": "integer"},
        "cpu_s": {"type": "number"},
        "children": {"type": "array", "items": {"$ref": "#"}},
    },
    "additionalProperties": False,
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


class TraceSchemaError(ValueError):
    """A trace record (or schema file) violates :data:`TRACE_RECORD_SCHEMA`."""


def _check(value: Any, schema: Dict[str, Any], path: str) -> None:
    if schema.get("$ref") == "#":
        schema = TRACE_RECORD_SCHEMA
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        ok = isinstance(value, py_type)
        if expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            raise TraceSchemaError(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )
    if expected == "object":
        for required in schema.get("required", ()):
            if required not in value:
                raise TraceSchemaError(f"{path}: missing key {required!r}")
        properties = schema.get("properties")
        if properties is not None:
            if schema.get("additionalProperties") is False:
                extra = set(value) - set(properties)
                if extra:
                    raise TraceSchemaError(
                        f"{path}: unexpected keys {sorted(extra)}"
                    )
            for key, sub in properties.items():
                if key in value:
                    _check(value[key], sub, f"{path}.{key}")
    elif expected == "array":
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                _check(item, items, f"{path}[{i}]")


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one parsed record against the schema; returns it unchanged.

    Raises :class:`TraceSchemaError` naming the offending path otherwise.
    """
    _check(record, TRACE_RECORD_SCHEMA, "$")
    return record


def span_to_record(span: Span) -> Dict[str, Any]:
    """Serialize a span tree into the JSONL record shape (recursively)."""
    record: Dict[str, Any] = {
        "name": span.name,
        "attrs": {str(k): _json_safe(v) for k, v in span.attrs.items()},
        "reads": span.io.reads,
        "writes": span.io.writes,
        "logical_reads": span.io.logical_reads,
        "cpu_s": span.cpu_s,
    }
    if span.children:
        record["children"] = [span_to_record(c) for c in span.children]
    return record


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


RecordLike = Union[Span, Dict[str, Any]]


def write_trace(records: Iterable[RecordLike], target: Union[str, IO[str]]
                ) -> int:
    """Write records (spans or dicts) as JSONL; returns the line count.

    ``target`` is a path or an open text file.  Every record is validated
    on the way out, so an emitted trace always conforms to the schema.
    """
    def emit(fh: IO[str]) -> int:
        count = 0
        for record in records:
            if isinstance(record, Span):
                record = span_to_record(record)
            validate_record(record)
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        return count

    if isinstance(target, (str, os.PathLike)):
        with open(target, "w") as fh:
            return emit(fh)
    return emit(target)


def read_trace(path: str, validate: bool = True) -> List[Dict[str, Any]]:
    """Load a JSONL trace file (optionally validating every record)."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{number}: not JSON: {exc}"
                ) from None
            if validate:
                try:
                    validate_record(record)
                except TraceSchemaError as exc:
                    raise TraceSchemaError(f"{path}:{number}: {exc}") from None
            records.append(record)
    return records


def iter_records(records: Iterable[Dict[str, Any]]
                 ) -> Iterator[Dict[str, Any]]:
    """Yield every record and nested child record, depth-first."""
    for record in records:
        yield record
        yield from iter_records(record.get("children", ()))
