"""Process-local collection of bench trace records and metrics.

The bench experiments build their competitors deep inside experiment
functions, so the CLI cannot hand a tracer down through every call.
Instead the harness's ``measure_*`` functions consult a process-local
*collector* (installed by :func:`collecting`, e.g. when ``python -m
repro.bench --trace out.jsonl`` runs): when one is active, every measured
phase appends one schema-conforming trace record and feeds the phase
histograms of the collector's :class:`~repro.obs.metrics.MetricsRegistry`.

With no collector installed (the default) the check is one global load and
a branch — measured I/O counters and outputs are untouched, keeping bench
results byte-identical to pre-observability runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracefile import validate_record

_ACTIVE: Optional["BenchCollector"] = None


class BenchCollector:
    """Accumulates per-phase trace records and a metrics registry."""

    def __init__(self, experiment: str = "") -> None:
        self.experiment = experiment
        self.records: List[Dict[str, Any]] = []
        self.registry = MetricsRegistry()
        self._phase_ios = self.registry.histogram(
            "repro_bench_phase_ios", "physical I/Os per measured phase")
        self._phase_cpu = self.registry.histogram(
            "repro_bench_phase_cpu_seconds", "CPU seconds per measured phase",
            buckets=(0.001, 0.01, 0.1, 1.0, 10.0, 100.0))
        self._operations = self.registry.counter(
            "repro_bench_operations_total", "operations measured")

    def record(self, name: str, stats, cpu_s: float, operations: int,
               **attrs: Any) -> Dict[str, Any]:
        """Append one measured phase as a trace record; returns it.

        ``stats`` is the phase's :class:`~repro.storage.stats.IOStats`
        delta; extra attrs (experiment id, estimated seconds) go into the
        record's ``attrs`` object.
        """
        merged = {"operations": operations}
        if self.experiment:
            merged["experiment"] = self.experiment
        merged.update(attrs)
        record = {
            "name": name,
            "attrs": {k: v for k, v in merged.items() if v is not None},
            "reads": stats.reads,
            "writes": stats.writes,
            "logical_reads": stats.logical_reads,
            "cpu_s": cpu_s,
        }
        validate_record(record)
        self.records.append(record)
        self._phase_ios.observe(stats.total_ios)
        self._phase_cpu.observe(cpu_s)
        self._operations.inc(operations)
        return record


def active() -> Optional[BenchCollector]:
    """The currently installed collector, or None (the common case)."""
    return _ACTIVE


@contextmanager
def collecting(experiment: str = "") -> Iterator[BenchCollector]:
    """Install a fresh collector for the duration of a ``with`` block.

    Nesting replaces the outer collector for the inner block (each bench
    experiment gets its own records); the outer one is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    collector = BenchCollector(experiment)
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous
