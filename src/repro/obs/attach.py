"""Wiring observability into warehouses, indexes, trees, and pools.

The instrumented objects never create tracers or registries themselves —
they hold a ``tracer`` attribute (the shared
:data:`~repro.obs.tracer.NULL_TRACER` by default) and a ``metrics``
attribute (``None`` by default).  The helpers here discover every buffer
pool, disk manager, and tree behind a target (duck-typed, same spirit as
the :class:`~repro.core.ingest.BatchLoader` discovery) and set those
attributes, so one call instruments a whole
:class:`~repro.core.warehouse.TemporalWarehouse` — both its pools, their
disks, and all its trees.

:func:`traced` is the usual entry point::

    with traced(warehouse) as tracer:
        warehouse.sum(key_range, interval)
    print(render_span_tree(tracer.last_root))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    PoolMetrics,
    QueryMetrics,
    TreeMetrics,
)
from repro.obs.tracer import NULL_TRACER, Tracer


def discover_pools(target: Any) -> List[Tuple[str, Any]]:
    """Unique ``(label, BufferPool)`` pairs behind ``target``.

    Labels name the discovery path: a warehouse yields ``tuples`` and
    ``aggregates``; a bare index or tree yields ``pool``.
    """
    from repro.storage.buffer import BufferPool

    found: dict[int, Tuple[str, Any]] = {}

    def visit(label: str, owner: Any) -> None:
        pool = owner if isinstance(owner, BufferPool) \
            else getattr(owner, "pool", None)
        if isinstance(pool, BufferPool) and id(pool) not in found:
            found[id(pool)] = (label, pool)

    visit("pool", target)
    for name in ("tuples", "aggregates", "tree", "index"):
        sub = getattr(target, name, None)
        if sub is not None and not callable(sub):
            visit(name, sub)
    return list(found.values())


def discover_trees(target: Any) -> List[Tuple[str, Any]]:
    """Unique ``(label, tree)`` pairs behind ``target`` (duck-typed).

    Covers bare MVSBT/MVBT/SB-trees (anything with ``pool`` and ``query``),
    :class:`~repro.core.rta.RTAIndex` (each (LKST, LKLT) pair, labelled
    ``SUM.lkst`` etc.), warehouses (the tuple MVBT plus the RTA trees),
    and the MVBT baseline wrapper.
    """
    found: dict[int, Tuple[str, Any]] = {}

    def visit(label: str, tree: Any) -> None:
        if tree is None or id(tree) in found:
            return
        if hasattr(tree, "pool") and (hasattr(tree, "query")
                                      or hasattr(tree, "rectangle_query")):
            found[id(tree)] = (label, tree)

    def visit_rta(prefix: str, index: Any) -> None:
        if callable(getattr(index, "trees", None)):
            for name, (lkst, lklt) in index.trees().items():
                visit(f"{prefix}{name}.lkst", lkst)
                visit(f"{prefix}{name}.lklt", lklt)

    visit("tree", target)
    visit_rta("", target)
    visit("tuples", getattr(target, "tuples", None))
    visit_rta("", getattr(target, "aggregates", None))
    visit("tree", getattr(target, "tree", None))
    return list(found.values())


def attach_tracer(target: Any, tracer: Tracer) -> List[Tuple[Any, Any]]:
    """Point every pool and disk behind ``target`` at ``tracer``.

    The tracer also starts watching each pool's ``IOStats`` so spans get
    per-pool I/O deltas.  Returns the previous ``(object, tracer)`` pairs
    for :func:`detach`.
    """
    previous: List[Tuple[Any, Any]] = []
    for label, pool in discover_pools(target):
        previous.append((pool, pool.tracer))
        previous.append((pool.disk, pool.disk.tracer))
        pool.tracer = tracer
        pool.disk.tracer = tracer
        tracer.watch(label, pool.stats)
    return previous


def detach(previous: List[Tuple[Any, Any]]) -> None:
    """Restore tracers saved by :func:`attach_tracer`."""
    for obj, tracer in previous:
        obj.tracer = tracer


def detach_tracer(target: Any) -> None:
    """Reset every pool and disk behind ``target`` to the null tracer."""
    for _, pool in discover_pools(target):
        pool.tracer = NULL_TRACER
        pool.disk.tracer = NULL_TRACER


@contextmanager
def traced(target: Any, tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Attach a tracer to ``target`` for the duration of a ``with`` block.

    Creates a fresh :class:`~repro.obs.tracer.Tracer` unless one is given;
    previous tracer wiring is restored on exit either way.
    """
    tracer = tracer if tracer is not None else Tracer()
    previous = attach_tracer(target, tracer)
    try:
        yield tracer
    finally:
        detach(previous)


def attach_metrics(target: Any,
                   registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
    """Give every pool and tree behind ``target`` metrics instruments.

    Pools get a :class:`~repro.obs.metrics.PoolMetrics` (batch-flush sizes,
    evictions), trees a :class:`~repro.obs.metrics.TreeMetrics`
    (pages-per-descent), and warehouse-like targets (anything with an
    ``aggregate`` method) a :class:`~repro.obs.metrics.QueryMetrics`
    (I/Os-per-query, plan choices).  Returns the registry.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for label, pool in discover_pools(target):
        pool.metrics = PoolMetrics(registry, label)
    for label, tree in discover_trees(target):
        tree.metrics = TreeMetrics(registry, label)
    if callable(getattr(target, "aggregate", None)):
        target.metrics = QueryMetrics(registry)
    return registry


def detach_metrics(target: Any) -> None:
    """Remove metrics instruments installed by :func:`attach_metrics`."""
    for _, pool in discover_pools(target):
        pool.metrics = None
    for _, tree in discover_trees(target):
        tree.metrics = None
    if callable(getattr(target, "aggregate", None)) \
            and hasattr(target, "metrics"):
        target.metrics = None
