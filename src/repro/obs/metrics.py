"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` names metrics Prometheus-style —
``repro_buffer_reads_total{pool="aggregates"}`` — and exports the whole set
as JSON (:meth:`MetricsRegistry.to_json`) or the Prometheus text exposition
format (:meth:`MetricsRegistry.render_prometheus`).  The buffer pool and
the trees publish into an attached registry (see
:func:`repro.obs.attach_metrics`):

* per-query physical I/Os (``repro_query_ios``, histogram),
* pages touched per tree descent (``repro_descent_pages``, histogram),
* batch-window flush sizes (``repro_flush_batch_pages``, histogram),
* every :class:`~repro.storage.stats.IOStats` counter and tree operation
  counter, on demand via :func:`snapshot_into`.

Like the tracer, metrics are opt-in: unattached objects hold ``None`` and
skip all bookkeeping with a single branch.

Registry lookup and every instrument mutation are thread-safe: the serve
layer publishes from the asyncio loop, the reader thread pool, and the
``/metrics`` HTTP thread at once, so :meth:`MetricsRegistry._get` and
``Counter.inc`` / ``Gauge.set`` / ``Histogram.observe`` all take a lock.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Default histogram buckets, sized for page-count-like quantities.
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                   512.0, 1024.0)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition rules:
    backslash, double quote, and newline must be escaped."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_text(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"'
                    for key, value in items)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value (events, I/Os, operations)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (residency, heights, fill factors)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  Observations update per-bucket counts, ``count`` and ``sum``.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "_lock")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram buckets must be sorted and unique: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation.

        A value exactly on a bucket's upper bound counts in that bucket
        (``le`` is an inclusive bound, Prometheus semantics): bisect_left
        lands on the index of the matching bound.
        """
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (the ``le`` series), ending at +Inf."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


class MetricsRegistry:
    """Named metrics with labels, creatable on first use.

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    called again with the same name and labels, so publishers do not need
    to cache handles (though hot paths should).
    """

    def __init__(self) -> None:
        #: name -> (kind, help text)
        self._meta: Dict[str, Tuple[str, str]] = {}
        #: (name, label items) -> instrument
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}
        #: Guards _meta/_instruments: publishers run on the asyncio loop,
        #: the reader pool, and the /metrics HTTP thread concurrently.
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, help_text: str,
             labels: Optional[Mapping[str, str]], factory) -> Any:
        key = (name, _label_items(labels))
        with self._lock:
            known = self._meta.get(name)
            if known is None:
                self._meta[name] = (kind, help_text)
            elif known[0] != kind:
                raise ValueError(
                    f"metric {name!r} is a {known[0]}, requested as {kind}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
        return instrument

    def _snapshot(self) -> Tuple[Dict[str, Tuple[str, str]],
                                 List[Tuple[Tuple[str, LabelItems], Any]]]:
        """A stable view for the exporters: meta copy + sorted series."""
        with self._lock:
            meta = dict(self._meta)
            instruments = sorted(self._instruments.items(),
                                 key=lambda kv: (kv[0][0], kv[0][1]))
        return meta, instruments

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get("histogram", name, help_text, labels,
                         lambda: Histogram(buckets))

    # -- export ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The whole registry as a JSON-safe dict (stable ordering)."""
        meta, instruments = self._snapshot()
        out: Dict[str, Any] = {}
        for name in sorted(meta):
            kind, help_text = meta[name]
            series = []
            for (metric, items), instrument in instruments:
                if metric != name:
                    continue
                entry: Dict[str, Any] = {"labels": dict(items)}
                if kind == "histogram":
                    entry.update(
                        count=instrument.count,
                        sum=instrument.sum,
                        buckets=[
                            {"le": le, "count": cum}
                            for le, cum in zip(
                                [*instrument.buckets, float("inf")],
                                instrument.cumulative_counts())
                        ],
                    )
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            out[name] = {"type": kind, "help": help_text, "series": series}
        return out

    def render_json(self, indent: int = 2) -> str:
        """:meth:`to_json` serialized (``Infinity`` encoded as a string)."""
        def default(value: Any) -> Any:
            return str(value)

        payload = self.to_json()
        for metric in payload.values():
            for entry in metric["series"]:
                for bucket in entry.get("buckets", ()):
                    if bucket["le"] == float("inf"):
                        bucket["le"] = "+Inf"
        return json.dumps(payload, indent=indent, default=default)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (sorted, deterministic)."""
        meta, instruments = self._snapshot()
        lines: List[str] = []
        for name in sorted(meta):
            kind, help_text = meta[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for (metric, items), instrument in instruments:
                if metric != name:
                    continue
                if kind == "histogram":
                    bounds = [*instrument.buckets, float("inf")]
                    for le, cum in zip(bounds, instrument.cumulative_counts()):
                        le_text = "+Inf" if le == float("inf") else f"{le:g}"
                        bucket_items = items + (("le", le_text),)
                        lines.append(
                            f"{name}_bucket{_label_text(bucket_items)} {cum}"
                        )
                    lines.append(
                        f"{name}_sum{_label_text(items)} {instrument.sum:g}")
                    lines.append(
                        f"{name}_count{_label_text(items)} {instrument.count}")
                else:
                    lines.append(
                        f"{name}{_label_text(items)} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


class PoolMetrics:
    """Instruments a :class:`~repro.storage.buffer.BufferPool` publishes into.

    Created by :func:`repro.obs.attach_metrics`; the pool holds it in its
    ``metrics`` attribute (``None`` when unattached).
    """

    __slots__ = ("registry", "label", "flush_batch_pages", "evictions",
                 "overcommits")

    def __init__(self, registry: MetricsRegistry, label: str) -> None:
        self.registry = registry
        self.label = label
        labels = {"pool": label}
        self.flush_batch_pages = registry.histogram(
            "repro_flush_batch_pages",
            "dirty pages written per batch-window flush", labels)
        self.evictions = registry.counter(
            "repro_buffer_evictions_total", "LRU frames evicted", labels)
        self.overcommits = registry.counter(
            "repro_buffer_overcommits_total",
            "evictions that found no victim and overcommitted", labels)


class TreeMetrics:
    """Instruments a tree (MVSBT/MVBT/SB-tree) publishes into."""

    __slots__ = ("registry", "label", "descent_pages")

    def __init__(self, registry: MetricsRegistry, label: str) -> None:
        self.registry = registry
        self.label = label
        self.descent_pages = registry.histogram(
            "repro_descent_pages",
            "pages touched per point-query descent", {"index": label},
            buckets=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0))


class QueryMetrics:
    """Instruments the warehouse / RTA query layer publishes into."""

    __slots__ = ("registry", "query_ios", "plan_mvsbt", "plan_mvbt_scan",
                 "result_cache_hits", "result_cache_misses")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.query_ios = registry.histogram(
            "repro_query_ios", "physical I/Os per aggregate query")
        self.plan_mvsbt = registry.counter(
            "repro_plan_choices_total", "planner decisions",
            {"plan": "mvsbt"})
        self.plan_mvbt_scan = registry.counter(
            "repro_plan_choices_total", "planner decisions",
            {"plan": "mvbt-scan"})
        self.result_cache_hits = registry.counter(
            "repro_result_cache_total", "result cache outcomes",
            {"outcome": "hit"})
        self.result_cache_misses = registry.counter(
            "repro_result_cache_total", "result cache outcomes",
            {"outcome": "miss"})


#: Latency buckets in seconds, sized for in-process query service times.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class ServerMetrics:
    """Instruments the :mod:`repro.serve` query server publishes into.

    Covers the admission-control and per-shard surface the ``metrics`` and
    ``metrics_text`` protocol ops expose: request counts by op, end-to-end
    latency, per-op latency split into queue-wait and execution phases,
    per-shard execution-time histograms, in-flight and queued request
    gauges, rejections by reason, sampled-trace and slow-request counters,
    and per-shard query/write counters.  Per-label instrument handles are
    cached so the request hot path never re-hashes registry keys.
    """

    __slots__ = ("registry", "latency", "queue_depth", "inflight",
                 "traces_sampled", "slow_requests", "_requests", "_rejected",
                 "_op_latency", "_op_phase", "_shard_seconds",
                 "_shard_queries", "_shard_writes")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.latency = registry.histogram(
            "repro_serve_latency_seconds",
            "end-to-end request latency", buckets=LATENCY_BUCKETS)
        self.queue_depth = registry.gauge(
            "repro_serve_queue_depth",
            "requests waiting for an execution slot")
        self.inflight = registry.gauge(
            "repro_serve_inflight", "requests currently executing")
        self.traces_sampled = registry.counter(
            "repro_serve_traces_sampled_total",
            "requests recorded by the sampled tracer")
        self.slow_requests = registry.counter(
            "repro_serve_slow_requests_total",
            "requests captured by the slow-query log")
        self._requests: Dict[str, Counter] = {}
        self._rejected: Dict[str, Counter] = {}
        self._op_latency: Dict[str, Histogram] = {}
        self._op_phase: Dict[Tuple[str, str], Histogram] = {}
        self._shard_seconds: Dict[int, Histogram] = {}
        self._shard_queries: Dict[int, Counter] = {}
        self._shard_writes: Dict[int, Counter] = {}

    def op_latency(self, op: str) -> Histogram:
        """The ``repro_serve_op_latency_seconds{op=...}`` histogram."""
        histogram = self._op_latency.get(op)
        if histogram is None:
            histogram = self.registry.histogram(
                "repro_serve_op_latency_seconds",
                "end-to-end request latency by op", {"op": op},
                buckets=LATENCY_BUCKETS)
            self._op_latency[op] = histogram
        return histogram

    def op_phase(self, op: str, phase: str) -> Histogram:
        """The ``repro_serve_op_phase_seconds{op=...,phase=...}`` histogram.

        ``phase`` is ``"queue"`` (time waiting for an admission slot) or
        ``"exec"`` (time on a reader-pool thread / shard worker).
        """
        histogram = self._op_phase.get((op, phase))
        if histogram is None:
            histogram = self.registry.histogram(
                "repro_serve_op_phase_seconds",
                "request latency split into queue-wait and execution",
                {"op": op, "phase": phase}, buckets=LATENCY_BUCKETS)
            self._op_phase[(op, phase)] = histogram
        return histogram

    def shard_seconds(self, shard: int) -> Histogram:
        """The ``repro_serve_shard_seconds{shard=...}`` histogram:
        execution time attributed to each shard a request touched."""
        histogram = self._shard_seconds.get(shard)
        if histogram is None:
            histogram = self.registry.histogram(
                "repro_serve_shard_seconds",
                "execution seconds attributed to each touched shard",
                {"shard": str(shard)}, buckets=LATENCY_BUCKETS)
            self._shard_seconds[shard] = histogram
        return histogram

    def request(self, op: str) -> Counter:
        """The ``repro_serve_requests_total{op=...}`` counter."""
        counter = self._requests.get(op)
        if counter is None:
            counter = self.registry.counter(
                "repro_serve_requests_total",
                "requests received by op", {"op": op})
            self._requests[op] = counter
        return counter

    def rejected(self, reason: str) -> Counter:
        """The ``repro_serve_rejected_total{reason=...}`` counter."""
        counter = self._rejected.get(reason)
        if counter is None:
            counter = self.registry.counter(
                "repro_serve_rejected_total",
                "requests refused by admission control or timeouts",
                {"reason": reason})
            self._rejected[reason] = counter
        return counter

    def shard_queries(self, shard: int) -> Counter:
        """The ``repro_serve_shard_queries_total{shard=...}`` counter."""
        counter = self._shard_queries.get(shard)
        if counter is None:
            counter = self.registry.counter(
                "repro_serve_shard_queries_total",
                "read statements executed, by home shard",
                {"shard": str(shard)})
            self._shard_queries[shard] = counter
        return counter

    def shard_writes(self, shard: int) -> Counter:
        """The ``repro_serve_shard_writes_total{shard=...}`` counter."""
        counter = self._shard_writes.get(shard)
        if counter is None:
            counter = self.registry.counter(
                "repro_serve_shard_writes_total",
                "DML statements applied, by owning shard",
                {"shard": str(shard)})
            self._shard_writes[shard] = counter
        return counter


def snapshot_into(registry: MetricsRegistry, target: Any) -> MetricsRegistry:
    """Pull-publish a target's current counters into ``registry``.

    Publishes every :class:`~repro.storage.stats.IOStats` counter of every
    buffer pool behind ``target`` as gauges
    (``repro_pool_<counter>{pool=...}``), plus tree operation counters
    (``repro_tree_<counter>{index=...}``) for MVSBT/MVBT trees.  Idempotent
    per call: gauges are overwritten, not accumulated.
    """
    from dataclasses import asdict

    from repro.obs.attach import discover_pools, discover_trees

    for label, pool in discover_pools(target):
        for counter, value in pool.stats.as_dict().items():
            registry.gauge(f"repro_pool_{counter}",
                           f"IOStats.{counter} of the pool",
                           {"pool": label}).set(value)
        registry.gauge("repro_pool_resident_pages",
                       "frames currently occupied",
                       {"pool": label}).set(len(pool.resident_page_ids))
    for label, tree in discover_trees(target):
        counters = getattr(tree, "counters", None)
        if counters is None:
            continue
        for counter, value in asdict(counters).items():
            registry.gauge(f"repro_tree_{counter}",
                           f"tree counter {counter}",
                           {"index": label}).set(value)
    snapshot = getattr(target, "cache_snapshot", None)
    if snapshot is not None:
        for layer, stats in snapshot().as_dict().items():
            for counter, value in stats.items():
                registry.gauge(f"repro_cache_{counter}",
                               f"read-path cache counter {counter}",
                               {"cache": layer}).set(value)
    return registry
