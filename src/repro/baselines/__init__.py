"""Baselines: the paper's comparator and the prior-work methods of section 2.

* :class:`~repro.baselines.mvbt_rta.MVBTRTABaseline` — the approach the
  paper's experiments compare against: keep the warehouse in an MVBT,
  retrieve every tuple of the query rectangle, aggregate on the fly.
* :class:`~repro.baselines.naive_scan.HeapFileScanBaseline` — [Tum92]'s
  two-step full-scan aggregation over a sequential heap file.
* :class:`~repro.baselines.aggregation_tree.AggregationTree` — [KS95]'s
  main-memory aggregation tree (segment-tree based, unbalanced).
* :class:`~repro.baselines.balanced_tree.BalancedTemporalAggregate` —
  [MLI00]'s balanced (red-black) main-memory temporal aggregation.
"""

from repro.baselines.aggregation_tree import AggregationTree
from repro.baselines.balanced_tree import (
    BalancedTemporalAggregate,
    RedBlackPrefixTree,
)
from repro.baselines.mvbt_rta import MVBTRTABaseline
from repro.baselines.naive_scan import HeapFileScanBaseline

__all__ = [
    "AggregationTree",
    "BalancedTemporalAggregate",
    "HeapFileScanBaseline",
    "MVBTRTABaseline",
    "RedBlackPrefixTree",
]
