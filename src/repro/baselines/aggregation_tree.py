"""[KS95]'s aggregation tree: main-memory, segment-tree based, unbalanced.

The aggregation tree incrementally maintains a scalar temporal SUM/COUNT:
it is a binary tree over the time axis whose nodes carry partial values
valid for their whole span (segment-tree value placement, like the
SB-tree), but node boundaries are created in insertion order with *no
rebalancing* — the paper's criticism is precisely that it "can become
unbalanced, which implies O(n) worst-case time".  The implementation keeps
that behaviour faithfully (see :meth:`depth`, exercised by the A6 context
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.model import NOW
from repro.errors import QueryError


@dataclass
class _Node:
    lo: int
    hi: int
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def split_at(self, point: int) -> None:
        """Turn a leaf into an interior node split at ``point``."""
        assert self.is_leaf and self.lo < point < self.hi
        self.left = _Node(self.lo, point)
        self.right = _Node(point, self.hi)


class AggregationTree:
    """Incremental scalar temporal SUM over a fixed time domain.

    ``insert(start, end, v)`` adds ``v`` to every instant of
    ``[start, end)``; ``aggregate(t)`` reads the value at ``t``.  COUNT is
    SUM of ones; deletion is insertion of the negation (both as in the
    paper's other additive structures).
    """

    def __init__(self, domain: tuple[int, int] = (1, NOW)) -> None:
        if domain[0] >= domain[1]:
            raise ValueError(f"empty time domain {domain}")
        self.domain = domain
        self._root = _Node(domain[0], domain[1])
        self._insertions = 0

    def insert(self, start: int, end: int, value: float) -> None:
        """Add ``value`` over ``[start, end)`` (clipped to the domain)."""
        lo = max(start, self.domain[0])
        hi = min(end, self.domain[1])
        if lo >= hi:
            raise QueryError(
                f"interval [{start},{end}) outside domain {self.domain}"
            )
        self._insert(self._root, lo, hi, value)
        self._insertions += 1

    def aggregate(self, t: int) -> float:
        """Instantaneous aggregate at ``t`` — sum along the root-leaf path."""
        if not (self.domain[0] <= t < self.domain[1]):
            raise QueryError(f"instant {t} outside domain {self.domain}")
        node = self._root
        acc = 0.0
        while node is not None:
            if node.lo <= t < node.hi:
                acc += node.value
                node = None if node.is_leaf else (
                    node.left if t < node.left.hi else node.right
                )
            else:  # pragma: no cover - guarded by domain check
                break
        return acc

    def _insert(self, root: _Node, lo: int, hi: int, value: float) -> None:
        # Iterative (explicit stack): degenerate trees reach O(n) depth —
        # the very weakness this baseline exists to demonstrate — which
        # would blow Python's recursion limit.
        stack = [(root, lo, hi)]
        while stack:
            node, node_lo, node_hi = stack.pop()
            if node_lo <= node.lo and node.hi <= node_hi:
                node.value += value
                continue
            if node.is_leaf:
                # Create boundaries on demand, one split per endpoint
                # strictly inside the leaf.  Depth grows with insertion
                # order — no rebalancing, exactly the [KS95] weakness.
                point = node_lo if node.lo < node_lo < node.hi else node_hi
                node.split_at(point)
            if node_lo < node.left.hi:
                stack.append((node.left, node_lo,
                              min(node_hi, node.left.hi)))
            if node_hi > node.right.lo:
                stack.append((node.right, max(node_lo, node.right.lo),
                              node_hi))

    # -- introspection --------------------------------------------------------------

    def depth(self) -> int:
        """Maximum root-to-leaf depth (1 for a single-node tree)."""
        deepest = 0
        stack = [(self._root, 1)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                deepest = max(deepest, level)
            else:
                stack.append((node.left, level + 1))
                stack.append((node.right, level + 1))
        return deepest

    def node_count(self) -> int:
        """Total tree nodes (space proxy for the main-memory structure)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.append(node.left)
                stack.append(node.right)
        return count

    @property
    def insertions(self) -> int:
        return self._insertions
