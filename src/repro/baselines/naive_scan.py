"""[Tum92]-style full-scan aggregation over a sequential heap file.

The oldest approach in the paper's related work (section 2.1): tuples live
in insertion order in heap pages; a temporal aggregate is computed by
scanning the whole file.  The classic formulation is *two* scans — one to
find the constant intervals of the result timeline, one to accumulate each
tuple's value into every result interval it affects — implemented here as
:meth:`aggregate_timeline`.  A single RTA rectangle needs only one scan
(:meth:`query`), still ``O(n/b)`` I/Os regardless of selectivity.

Logical deletions update the tuple's record in place; an in-memory
alive-key directory locates the record without extra I/O (a deliberately
generous simplification — the baseline's queries, which are what the paper
measures, are unaffected).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.aggregates import Aggregate, AVG, SUM
from repro.core.model import Interval, KeyRange, MAX_KEY, NOW
from repro.core.rta import RTAResult
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.mvbt.entries import LEAF_KIND, LeafEntry
from repro.storage.buffer import BufferPool


class HeapFileScanBaseline:
    """Append-only heap file of temporal tuples with scan-based aggregation."""

    def __init__(self, pool: BufferPool, capacity: int = 64,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1)) -> None:
        self.pool = pool
        self.capacity = capacity
        self.key_space = key_space
        self._page_ids: List[int] = []
        # key -> (page_id, slot) of the alive record; spares deletions a scan.
        self._alive: Dict[int, Tuple[int, int]] = {}
        self._count = 0

    # -- update API -----------------------------------------------------------------

    def insert(self, key: int, value: float, t: int) -> None:
        """Append a tuple alive from ``t``."""
        if key in self._alive:
            raise DuplicateKeyError(f"key {key} is alive")
        if not self._page_ids or len(self._tail()) >= self.capacity:
            page = self.pool.allocate(self.capacity, LEAF_KIND)
            self._page_ids.append(page.page_id)
        page = self._tail()
        page.add(LeafEntry(key, t, NOW, value))
        self._alive[key] = (page.page_id, len(page.records) - 1)
        self._count += 1

    def delete(self, key: int, t: int) -> float:
        """Close the alive tuple's interval at ``t`` (in-place update)."""
        try:
            page_id, slot = self._alive.pop(key)
        except KeyError:
            raise KeyNotFoundError(f"no alive tuple with key {key}") from None
        page = self.pool.fetch(page_id)
        entry = page.records[slot]
        entry.end = t
        page.mark_dirty()
        return entry.value

    def _tail(self):
        return self.pool.fetch(self._page_ids[-1])

    def __len__(self) -> int:
        return self._count

    # -- query API --------------------------------------------------------------------

    def query(self, key_range: KeyRange, interval: Interval,
              aggregate: Aggregate = SUM) -> Optional[float]:
        """One full scan; fold qualifying tuples into the aggregate."""
        if aggregate.name == AVG.name:
            return self.aggregate_all(key_range, interval).avg
        acc = aggregate.identity
        for entry in self._scan():
            if self._qualifies(entry, key_range, interval):
                acc = aggregate.combine(acc, aggregate.lift(entry.value))
        return acc

    def sum(self, key_range: KeyRange, interval: Interval) -> float:
        """RTA SUM by one full scan."""
        return self.query(key_range, interval, SUM)

    def aggregate_all(self, key_range: KeyRange,
                      interval: Interval) -> RTAResult:
        """SUM, COUNT and AVG from one scan."""
        total = 0.0
        count = 0
        for entry in self._scan():
            if self._qualifies(entry, key_range, interval):
                total += entry.value
                count += 1
        return RTAResult(sum=total, count=float(count))

    def aggregate_timeline(
            self, key_range: Optional[KeyRange] = None,
    ) -> List[Tuple[int, int, float]]:
        """[Tum92]'s two-step scalar aggregation.

        Scan 1 collects every interval endpoint, defining the maximal
        constant intervals of the result; scan 2 adds each tuple's value to
        every result interval its lifespan covers.  Returns
        ``(start, end, sum)`` triples covering all instants where at least
        one tuple was alive.
        """
        boundaries = set()
        for entry in self._scan():
            if key_range is not None and not key_range.contains(entry.key):
                continue
            boundaries.add(entry.start)
            boundaries.add(entry.end)
        if not boundaries:
            return []
        ordered = sorted(boundaries)
        sums = [0.0] * (len(ordered) - 1)
        for entry in self._scan():
            if key_range is not None and not key_range.contains(entry.key):
                continue
            for i, (lo, hi) in enumerate(zip(ordered, ordered[1:])):
                if entry.start <= lo and hi <= entry.end:
                    sums[i] += entry.value
        return [
            (lo, hi, total)
            for (lo, hi), total in zip(zip(ordered, ordered[1:]), sums)
        ]

    # -- internals -----------------------------------------------------------------------

    def _scan(self):
        for page_id in self._page_ids:
            page = self.pool.fetch(page_id)
            yield from page.records

    @staticmethod
    def _qualifies(entry: LeafEntry, key_range: KeyRange,
                   interval: Interval) -> bool:
        return (key_range.contains(entry.key)
                and entry.start < interval.end
                and entry.end > interval.start)

    def page_count(self) -> int:
        """Heap pages used (the scan cost in pages)."""
        return len(self._page_ids)
