"""[MLI00]-style balanced main-memory temporal aggregation.

[MLI00] fixed the aggregation tree's degeneracy with a balanced (red-black)
tree, keeping insertion and instantaneous-aggregate cost at O(log n) — but
still main-memory resident, which is the paper's remaining criticism.

The structure here is a red-black tree over interval endpoints augmented
with subtree sums: inserting a tuple ``[s, e) : v`` contributes ``+v`` at
``s`` and ``-v`` at ``e``; the instantaneous aggregate at ``t`` is the
prefix sum of contributions at keys ``<= t``.  Rotations preserve the
augmented sums, so both operations stay logarithmic regardless of the
insertion pattern.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import QueryError

RED, BLACK = True, False


class _Node:
    __slots__ = ("key", "delta", "sum", "color", "left", "right", "parent")

    def __init__(self, key: int, delta: float, nil: "_Node") -> None:
        self.key = key
        self.delta = delta
        self.sum = delta
        self.color = RED
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackPrefixTree:
    """Red-black tree of ``(key, delta)`` with O(log n) prefix sums.

    ``add(key, delta)`` accumulates a contribution at ``key``;
    ``prefix_sum(key)`` returns the total of contributions at keys
    ``<= key``.  This is the order-statistic augmentation of CLRS chapter
    14 with sums in place of sizes.
    """

    def __init__(self) -> None:
        self._nil = _Node.__new__(_Node)
        self._nil.key = 0
        self._nil.delta = 0.0
        self._nil.sum = 0.0
        self._nil.color = BLACK
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- queries ---------------------------------------------------------------------

    def prefix_sum(self, key: int) -> float:
        """Sum of deltas stored at keys ``<= key``."""
        acc = 0.0
        node = self._root
        while node is not self._nil:
            if key < node.key:
                node = node.left
            else:
                acc += node.left.sum + node.delta
                node = node.right
        return acc

    def total(self) -> float:
        """Sum of every stored delta (the whole-tree aggregate)."""
        return self._root.sum

    # -- updates ----------------------------------------------------------------------

    def add(self, key: int, delta: float) -> None:
        """Accumulate ``delta`` at ``key`` (inserting the key if new)."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            if key == node.key:
                node.delta += delta
                while node is not self._nil:
                    node.sum += delta
                    node = node.parent
                return
            parent = node
            node = node.left if key < node.key else node.right
        fresh = _Node(key, delta, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        walker = parent
        while walker is not self._nil:
            walker.sum += delta
            walker = walker.parent
        self._size += 1
        self._insert_fixup(fresh)

    # -- red-black machinery ------------------------------------------------------------

    def _refresh(self, node: _Node) -> None:
        node.sum = node.left.sum + node.delta + node.right.sum

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        # y now roots x's old subtree; recompute bottom-up.
        self._refresh(x)
        self._refresh(y)

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        self._refresh(x)
        self._refresh(y)

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color == RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        self._root.color = BLACK

    # -- introspection ------------------------------------------------------------------

    def depth(self) -> int:
        """Maximum root-to-NIL depth; stays O(log n) by the RB rules."""
        deepest = 0
        stack = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            if node is self._nil:
                deepest = max(deepest, level)
            else:
                stack.append((node.left, level + 1))
                stack.append((node.right, level + 1))
        return deepest

    def check_invariants(self) -> None:
        """Red-black properties + augmented-sum consistency."""
        assert self._root.color == BLACK, "root must be black"

        def walk(node: _Node) -> Tuple[int, float]:
            if node is self._nil:
                return 1, 0.0
            if node.color == RED:
                assert node.left.color == BLACK \
                    and node.right.color == BLACK, "red node with red child"
            if node.left is not self._nil:
                assert node.left.key < node.key, "BST order violated"
            if node.right is not self._nil:
                assert node.right.key > node.key, "BST order violated"
            left_black, left_sum = walk(node.left)
            right_black, right_sum = walk(node.right)
            assert left_black == right_black, "black-height mismatch"
            expected = left_sum + node.delta + right_sum
            assert abs(node.sum - expected) < 1e-9, "augmented sum stale"
            return left_black + (node.color == BLACK), expected

        walk(self._root)


class BalancedTemporalAggregate:
    """Scalar instantaneous SUM/COUNT aggregation on a red-black tree.

    Semantics match :class:`~repro.sbtree.tree.SBTree` and
    :class:`~repro.baselines.aggregation_tree.AggregationTree`:
    ``insert(start, end, v)`` adds ``v`` over ``[start, end)``;
    ``aggregate(t)`` reads the value at ``t``; deletion is insertion of the
    negation.  All operations are O(log n) worst case.
    """

    def __init__(self) -> None:
        self._tree = RedBlackPrefixTree()
        self._insertions = 0

    def insert(self, start: int, end: int, value: float) -> None:
        """Add ``value`` over ``[start, end)`` (two endpoint deltas)."""
        if start >= end:
            raise QueryError(f"empty interval [{start},{end})")
        self._tree.add(start, value)
        self._tree.add(end, -value)
        self._insertions += 1

    def aggregate(self, t: int) -> float:
        """Instantaneous aggregate at ``t`` (a prefix sum)."""
        return self._tree.prefix_sum(t)

    def depth(self) -> int:
        """Depth of the underlying red-black tree."""
        return self._tree.depth()

    def check_invariants(self) -> None:
        """Audit the underlying red-black tree."""
        self._tree.check_invariants()

    @property
    def insertions(self) -> int:
        return self._insertions
