"""The paper's naive competitor: retrieve from an MVBT, then aggregate.

Section 5 compares the two-MVSBT approach against "a single index that
first retrieves the tuples of the warehouse which satisfy the RTA key-range
and time-interval predicates, and then computes the aggregate on the
retrieved tuples", instantiated with the MVBT.  Updates are as cheap as the
MVBT's; the problem is the query: its cost is proportional to the number of
tuples in the rectangle, so it degrades linearly with the query-rectangle
size while the MVSBT plan stays logarithmic.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.aggregates import Aggregate, AVG, COUNT, SUM
from repro.core.model import Interval, KeyRange, MAX_KEY
from repro.core.rta import RTAResult
from repro.errors import QueryError
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.storage.buffer import BufferPool


class MVBTRTABaseline:
    """RTA queries by rectangle retrieval over a Multiversion B-Tree.

    The update API mirrors :class:`~repro.core.rta.RTAIndex` so experiments
    can replay one stream into both competitors.
    """

    def __init__(self, pool: BufferPool, config: Optional[MVBTConfig] = None,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 start_time: int = 1, paged_roots: bool = False) -> None:
        self.tree = MVBT(pool, config, key_space=key_space,
                         start_time=start_time, paged_roots=paged_roots)
        self.pool = pool

    # -- update API (pass-through) ---------------------------------------------------

    def insert(self, key: int, value: float, t: int) -> None:
        """Insert a tuple alive from ``t``."""
        self.tree.insert(key, value, t)

    def delete(self, key: int, t: int) -> float:
        """Logically delete the alive tuple with ``key`` at ``t``."""
        return self.tree.delete(key, t)

    def update(self, key: int, value: float, t: int) -> None:
        """Replace the alive tuple's value at ``t``."""
        self.tree.update(key, value, t)

    # -- query API ---------------------------------------------------------------------

    def query(self, key_range: KeyRange, interval: Interval,
              aggregate: Aggregate = SUM) -> Optional[float]:
        """Retrieve every tuple in the rectangle and fold the aggregate."""
        if aggregate.name == AVG.name:
            return self.aggregate_all(key_range, interval).avg
        tuples = self.tree.rectangle_query(
            key_range.low, key_range.high, interval.start, interval.end
        )
        acc = aggregate.identity
        for (_key, _start, _end, value) in tuples:
            acc = aggregate.combine(acc, aggregate.lift(value))
        return acc

    def sum(self, key_range: KeyRange, interval: Interval) -> float:
        """RTA SUM via retrieval."""
        return self.query(key_range, interval, SUM)

    def count(self, key_range: KeyRange, interval: Interval) -> float:
        """RTA COUNT via retrieval."""
        return self.query(key_range, interval, COUNT)

    def avg(self, key_range: KeyRange, interval: Interval) -> Optional[float]:
        """RTA AVG via retrieval (``None`` on an empty rectangle)."""
        return self.aggregate_all(key_range, interval).avg

    def aggregate_all(self, key_range: KeyRange,
                      interval: Interval) -> RTAResult:
        """SUM, COUNT and AVG from a single retrieval pass."""
        tuples = self.tree.rectangle_query(
            key_range.low, key_range.high, interval.start, interval.end
        )
        total = sum(value for (_k, _s, _e, value) in tuples)
        return RTAResult(sum=total, count=float(len(tuples)))

    # -- introspection -----------------------------------------------------------------

    def page_count(self) -> int:
        """Pages of the underlying MVBT (Figure 4a space metric)."""
        return self.tree.page_count()

    def check_invariants(self) -> None:
        """Audit the underlying MVBT."""
        self.tree.check_invariants()
