"""The page abstraction shared by every index in the library.

A :class:`Page` models one fixed-size disk block.  Indexes store *records*
(small tuples or dataclass instances) in a page; the page enforces a record
capacity derived from the page size in bytes and the per-record byte width of
the owning index (the paper uses 4 KB pages and 16--24 byte records).

Pages are deliberately dumb containers: all structural logic (splits, record
classification, tiling invariants) lives in the index packages.  What the
page *does* own is its identity, its dirty flag, and its capacity check.

Two small hooks support the index layers' derived-state caches (e.g. the
sorted alive-record mirrors behind the binary-search page operations):
``version`` is a monotonically increasing mutation counter bumped by every
mutating method, and ``cache`` is an opaque slot where an index may park a
structure derived from ``records`` tagged with the version it was built
against.  The storage layer never interprets either; a cache whose recorded
version no longer matches ``page.version`` is simply stale.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.errors import PageOverflowError

#: Page id used to mean "no page" (e.g. a leaf record's child pointer).
INVALID_PAGE_ID = -1


class Page:
    """One fixed-capacity disk block holding a list of records.

    Parameters
    ----------
    page_id:
        Identity assigned by the disk manager.  Stable for the page's life.
    capacity:
        Maximum number of records the page may hold.  ``capacity`` is the
        paper's ``b``; it is computed by the owning index from the page size
        and record width (see :func:`repro.storage.serialization.records_per_page`).
    kind:
        Free-form tag set by the owning index (e.g. ``"mvsbt-leaf"``).  Used
        by serializers and debug dumps; the storage layer never interprets it.
    """

    __slots__ = (
        "page_id",
        "capacity",
        "kind",
        "records",
        "dirty",
        "meta",
        "version",
        "cache",
    )

    def __init__(self, page_id: int, capacity: int, kind: str = "raw") -> None:
        if capacity < 2:
            raise ValueError(f"page capacity must be >= 2, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self.kind = kind
        self.records: List[Any] = []
        self.dirty = False
        #: Small per-page metadata dict (e.g. a tree level or lifespan);
        #: serialized into the page header by the codecs.
        self.meta: dict[str, Any] = {}
        #: Mutation counter; bumped by :meth:`add`, :meth:`remove` and
        #: :meth:`mark_dirty` so index-layer caches can detect staleness.
        self.version = 0
        #: Opaque slot for index-layer derived state (never serialized).
        self.cache: Any = None

    # -- record manipulation -------------------------------------------------

    def add(self, record: Any) -> None:
        """Append ``record`` and mark the page dirty.

        Appending is allowed to *transiently* exceed ``capacity`` by one
        record: index insertion algorithms detect overflow after the fact
        (the paper's overflow condition is "more than ``b`` records").
        Exceeding ``capacity + 1`` indicates a bug in the caller.
        """
        if len(self.records) > self.capacity:
            raise PageOverflowError(
                f"page {self.page_id} already overflowed "
                f"({len(self.records)}/{self.capacity} records)"
            )
        self.records.append(record)
        self.dirty = True
        self.version += 1

    def remove(self, record: Any) -> None:
        """Physically remove ``record`` (identity/equality match)."""
        self.records.remove(record)
        self.dirty = True
        self.version += 1

    def mark_dirty(self) -> None:
        """Flag the page as modified in place (record mutation)."""
        self.dirty = True
        self.version += 1

    # -- state queries --------------------------------------------------------

    @property
    def overflowed(self) -> bool:
        """True when the page holds more than ``capacity`` records."""
        return len(self.records) > self.capacity

    @property
    def free_slots(self) -> int:
        """Number of records that can still be added without overflow."""
        return self.capacity - len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Page(id={self.page_id}, kind={self.kind!r}, "
            f"{len(self.records)}/{self.capacity} records)"
        )
