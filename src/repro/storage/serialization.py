"""Fixed-width record codecs and records-per-page capacity math.

The paper's setting is 4 KB pages with 4-byte key/start/end/value fields.
These codecs serve two purposes:

* compute ``b`` (records per page) for each record layout, so the simulated
  indexes use realistic fan-outs;
* give :class:`~repro.storage.disk.FileDiskManager` a concrete on-disk format,
  proving the structures round-trip through real bytes.

All codecs are :mod:`struct`-based and little-endian.  Timestamps use 8-byte
fields because the library's ``NOW`` sentinel (2**62) exceeds 32 bits; the
capacity helpers accept an explicit layout so benchmarks can model the
paper's exact 4-byte widths when desired.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Bytes reserved per page for header bookkeeping (page id, kind tag, record
#: count, lifespan).  A real system needs roughly this much; the exact value
#: only perturbs ``b`` by a fraction of one record.
PAGE_HEADER_BYTES = 32

#: The paper's page size.
DEFAULT_PAGE_BYTES = 4096


def records_per_page(record_bytes: int, page_bytes: int = DEFAULT_PAGE_BYTES,
                     header_bytes: int = PAGE_HEADER_BYTES) -> int:
    """Capacity ``b`` for a page of ``page_bytes`` holding fixed-width records.

    >>> records_per_page(16)   # MVBT leaf record: key,start,end,value @ 4 B
    254
    """
    if record_bytes <= 0:
        raise ValueError("record_bytes must be positive")
    usable = page_bytes - header_bytes
    if usable < 2 * record_bytes:
        raise ValueError(
            f"page of {page_bytes} B cannot hold two {record_bytes} B records"
        )
    return usable // record_bytes


@dataclass(frozen=True)
class RecordCodec:
    """A ``struct`` layout plus encode/decode between records and tuples.

    ``to_tuple``/``from_tuple`` adapt an index's record class to the flat
    field tuple the struct format expects.
    """

    fmt: str
    to_tuple: Callable[[Any], Tuple]
    from_tuple: Callable[[Tuple], Any]

    @property
    def record_bytes(self) -> int:
        return struct.calcsize(self.fmt)

    def encode(self, record: Any) -> bytes:
        """Serialize one record to its fixed-width byte form."""
        return struct.pack(self.fmt, *self.to_tuple(record))

    def decode(self, raw: bytes) -> Any:
        """Inverse of :meth:`encode`."""
        return self.from_tuple(struct.unpack(self.fmt, raw))


#: Registry mapping a page ``kind`` tag to its codec.  Index packages register
#: their record layouts at import time; the file-backed disk manager looks the
#: codec up by the page's kind.
_CODECS: Dict[str, RecordCodec] = {}


def register_codec(kind: str, codec: RecordCodec) -> None:
    """Register ``codec`` for pages tagged ``kind`` (idempotent re-registration)."""
    _CODECS[kind] = codec


def codec_for(kind: str) -> RecordCodec:
    """Look up the codec for a page kind; raises ``KeyError`` if unregistered."""
    return _CODECS[kind]


def encode_page(page_kind: str, records: Sequence[Any], page_bytes: int) -> bytes:
    """Serialize ``records`` into a page image of exactly ``page_bytes`` bytes.

    Header layout: kind tag (16 bytes, NUL-padded ASCII) + record count (u32)
    + 12 reserved bytes.
    """
    codec = codec_for(page_kind)
    kind_raw = page_kind.encode("ascii")[:16].ljust(16, b"\0")
    header = kind_raw + struct.pack("<I", len(records)) + b"\0" * 12
    body = b"".join(codec.encode(rec) for rec in records)
    image = header + body
    if len(image) > page_bytes:
        raise ValueError(
            f"{len(records)} records of kind {page_kind!r} exceed "
            f"{page_bytes} B page"
        )
    return image.ljust(page_bytes, b"\0")


def encode_page_flat(page_kind: str, count: int, flat: Sequence[Any],
                     page_bytes: int) -> bytes:
    """Bulk twin of :func:`encode_page` for columnar page state.

    ``flat`` holds ``count`` records' fields concatenated in the codec's
    field order (see ``ColumnarBlock.to_rows``); the whole body is packed
    by one ``struct.pack`` call.  Little-endian formats have no padding,
    so the image is byte-identical to the record-at-a-time encoder's.
    """
    codec = codec_for(page_kind)
    kind_raw = page_kind.encode("ascii")[:16].ljust(16, b"\0")
    header = kind_raw + struct.pack("<I", count) + b"\0" * 12
    body = struct.pack("<" + codec.fmt[1:] * count, *flat) if count else b""
    image = header + body
    if len(image) > page_bytes:
        raise ValueError(
            f"{count} records of kind {page_kind!r} exceed "
            f"{page_bytes} B page"
        )
    return image.ljust(page_bytes, b"\0")


def encode_page_image(page: Any, page_bytes: int) -> bytes:
    """Encode a page in whichever representation it currently holds.

    Object pages go through :func:`encode_page`; a page whose ``records``
    is ``None`` parks its state in ``page.cache`` — any object exposing
    ``to_rows()`` (the MVSBT's columnar ingest blocks) — and is encoded in
    bulk via :func:`encode_page_flat`.
    """
    records = page.records
    if records is None:
        count, flat = page.cache.to_rows()
        return encode_page_flat(page.kind, count, flat, page_bytes)
    return encode_page(page.kind, records, page_bytes)


#: ``pack_events`` wire magic + version (guards against foreign blobs).
_EVENTS_MAGIC = b"rpev1\0"


def pack_events(events: Sequence[Any]) -> bytes:
    """Pack an update-event batch into one columnar binary blob.

    Events are anything with ``op``/``key``/``value``/``time`` attributes
    or bare ``(op, key, value, time)`` sequences.  Layout: magic, ``<I``
    count, ``count`` op bytes (1 insert / 0 delete), then the keys,
    values and times as contiguous ``<q``/``<d``/``<q`` arrays — four
    ``struct.pack`` calls however large the batch, which is what lets a
    procpool LOAD ship a shard's partition as one buffer instead of a
    list of pickled tuples.
    """
    ops = bytearray()
    keys: List[int] = []
    values: List[float] = []
    times: List[int] = []
    for row in events:
        if hasattr(row, "op"):
            op, key = row.op, row.key
            value, time = getattr(row, "value", 0.0), row.time
        else:
            op, key, value, time = row
        if op == "insert":
            ops.append(1)
        elif op == "delete":
            ops.append(0)
        else:
            raise ValueError(f"unknown event op {op!r}")
        keys.append(int(key))
        values.append(float(value))
        times.append(int(time))
    n = len(ops)
    return b"".join((
        _EVENTS_MAGIC,
        struct.pack("<I", n),
        bytes(ops),
        struct.pack(f"<{n}q", *keys),
        struct.pack(f"<{n}d", *values),
        struct.pack(f"<{n}q", *times),
    ))


def unpack_events(blob: bytes) -> List[Tuple[str, int, float, int]]:
    """Inverse of :func:`pack_events`: plain ``(op, key, value, time)`` rows.

    Returns bare tuples (no ingest-layer import) that
    :func:`repro.core.ingest.coerce_events` accepts directly.
    """
    if blob[:len(_EVENTS_MAGIC)] != _EVENTS_MAGIC:
        raise ValueError("not a pack_events blob (bad magic)")
    offset = len(_EVENTS_MAGIC)
    (n,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    ops = blob[offset:offset + n]
    offset += n
    keys = struct.unpack_from(f"<{n}q", blob, offset)
    offset += 8 * n
    values = struct.unpack_from(f"<{n}d", blob, offset)
    offset += 8 * n
    times = struct.unpack_from(f"<{n}q", blob, offset)
    return [("insert" if ops[i] else "delete", keys[i], values[i], times[i])
            for i in range(n)]


def decode_page(raw: bytes) -> Tuple[str, list]:
    """Inverse of :func:`encode_page`: returns ``(kind, records)``."""
    kind = raw[:16].rstrip(b"\0").decode("ascii")
    (count,) = struct.unpack("<I", raw[16:20])
    codec = codec_for(kind)
    width = codec.record_bytes
    body = raw[PAGE_HEADER_BYTES:]
    records = [
        codec.decode(body[i * width:(i + 1) * width]) for i in range(count)
    ]
    return kind, records


class DecodedPageCache:
    """Decoded-record cache above the page codecs (opt-in, LRU-bounded).

    :class:`~repro.storage.disk.FileDiskManager` decodes every record of a
    page on every physical read — pure CPU the paper's I/O metric never
    sees but a real server pays per request.  This cache keeps the decoded
    record lists of recently written-back or evicted pages so a re-read
    skips the ``struct`` loop entirely.

    Record objects are mutable, so the cache uses **ownership transfer**:
    :meth:`take` *pops* the entry (hit or nothing), making every record
    list owned by exactly one of {cache, live buffered page} — an aliased
    list can never be mutated behind the cache's back.  Coherence then
    follows from the buffer pool's discipline: an entry is only consumed
    when the page is not buffer-resident, and the last thing that happens
    to a resident page on its way out is the :meth:`put` from its write-
    back (dirty) or clean-eviction hook, so the cached records always
    match the on-disk bytes.  Page dirtying needs no extra invalidation
    hook for the same reason — a dirtied page is, by definition, resident.
    """

    __slots__ = ("capacity", "stats", "_entries")

    def __init__(self, capacity: int = 512) -> None:
        from repro.core.cache import CacheStats

        if capacity < 1:
            raise ValueError("decoded-page cache needs capacity >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        #: page_id -> (kind, records, page capacity)
        self._entries: "OrderedDict[int, Tuple[str, List[Any], int]]" = \
            OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def take(self, page_id: int) -> Optional[Tuple[str, List[Any], int]]:
        """Pop and return the decoded entry, or ``None`` (a decode is due)."""
        entry = self._entries.pop(page_id, None)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(self, page_id: int, kind: str, records: List[Any],
            capacity: int) -> None:
        """Adopt a page's decoded records (the caller yields ownership)."""
        self._entries[page_id] = (kind, records, capacity)
        self._entries.move_to_end(page_id)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, page_id: int) -> None:
        """Drop a freed page's entry."""
        if self._entries.pop(page_id, None) is not None:
            self.stats.stale_drops += 1

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
