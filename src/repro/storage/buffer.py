"""LRU buffer pool with pin/unpin semantics and exact I/O accounting.

Every index in this library accesses pages exclusively through a
:class:`BufferPool`, so physical reads (buffer misses) and writes (dirty
evictions plus explicit flushes) are counted identically for all competitors.
The paper's experiments use an LRU buffer of 64 pages by default and sweep
the buffer size in Figure 4c; both are plain constructor parameters here.

A small convenience departure from textbook pools: :meth:`fetch` returns the
page *unpinned* by default, because the single-threaded simulation never has
concurrent evict-while-in-use hazards unless an algorithm holds several pages
across further fetches — which the index code does during splits, using
:meth:`pin`/:meth:`unpin` (or the :meth:`pinned` context manager) around
those windows.

Batch windows (:meth:`begin_batch` / :meth:`flush_batch` / :meth:`end_batch`)
support buffer-tree-style ingestion: while a window is open, eviction prefers
clean victims and keeps dirty pages resident so repeated mutations of a hot
page coalesce into one eventual write-back.  Each deferral is counted once
per page per window in ``IOStats.coalesced_writes``; if no victim is
evictable at all, the pool transiently over-commits and counts it in
``IOStats.overcommit``.

The pool is **not thread-safe by default** — the simulation is
single-threaded and the hot path stays branch-free.  The
:mod:`repro.serve` query server, which runs readers in a thread pool,
opts into guard rails per pool: :meth:`enable_locking` wraps the public
protocol in one :class:`threading.RLock`, and
:meth:`enable_concurrency_assertions` (tests) detects unlocked concurrent
entry and raises :class:`~repro.errors.ConcurrentAccessError` instead of
corrupting frames silently.  Both rebind the instance's methods, so a
pool that never opts in pays nothing.
"""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.errors import (
    BufferPoolError,
    ConcurrentAccessError,
    PageNotFoundError,
)
from repro.obs.tracer import NULL_TRACER
from repro.storage.disk import DiskManager
from repro.storage.page import Page
from repro.storage.stats import IOStats

DEFAULT_BUFFER_PAGES = 64

#: Public methods serialized by :meth:`BufferPool.enable_locking` and
#: checked by :meth:`BufferPool.enable_concurrency_assertions`.
_GUARDED_METHODS = (
    "fetch", "allocate", "free", "flush", "flush_all", "clear",
    "begin_batch", "flush_batch", "end_batch", "pin", "unpin",
)


class _EntryGuard:
    """Re-entrancy-aware detector of concurrent unlocked access.

    Best-effort by design (the bookkeeping itself is unlocked — adding a
    lock would mask exactly the bug being hunted), but any overlap where
    one thread is inside a guarded method while another enters is caught
    at the second thread's entry point.
    """

    __slots__ = ("_owner", "_depth")

    def __init__(self) -> None:
        self._owner: Optional[int] = None
        self._depth = 0

    def wrap(self, method):
        @functools.wraps(method)
        def guarded(*args, **kwargs):
            me = threading.get_ident()
            owner = self._owner
            if owner is not None and owner != me:
                raise ConcurrentAccessError(
                    f"thread {me} entered BufferPool.{method.__name__} "
                    f"while thread {owner} is inside the pool; wrap access "
                    "in a lock (see BufferPool.enable_locking)"
                )
            self._owner = me
            self._depth += 1
            try:
                return method(*args, **kwargs)
            finally:
                self._depth -= 1
                if self._depth == 0:
                    self._owner = None
        return guarded


class BufferPool:
    """LRU cache of :class:`Page` objects in front of a :class:`DiskManager`.

    Parameters
    ----------
    disk:
        Backing disk manager (shared between indexes only if they should
        share one I/O budget; experiments give each competitor its own).
    capacity:
        Number of page frames (the paper's default is 64).
    stats:
        Optional externally owned :class:`IOStats`; one is created otherwise.
    policy:
        ``"lru"`` (default, the paper's buffer) or ``"2q"`` — segmented
        LRU with a probationary and a protected segment.  First touch
        admits to probation; a re-reference promotes to protected, whose
        overflow demotes its LRU page back to probation.  Victims come
        from probation first, so one long rectangle scan (every page
        touched exactly once) cannot flush the re-referenced hot set.
    protected_fraction:
        Share of ``capacity`` the protected segment may hold under
        ``"2q"`` (default 0.5, at least one frame).
    """

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_BUFFER_PAGES,
                 stats: Optional[IOStats] = None, policy: str = "lru",
                 protected_fraction: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        if policy not in ("lru", "2q"):
            raise ValueError(f"unknown eviction policy {policy!r}")
        if not (0.0 < protected_fraction < 1.0):
            raise ValueError(
                f"protected fraction must be in (0, 1), got "
                f"{protected_fraction}"
            )
        self.disk = disk
        self.capacity = capacity
        self.policy = policy
        self.stats = stats if stats is not None else IOStats()
        # 2Q segment bookkeeping (ids only; pages live in ``_frames``).
        # ``None`` under plain LRU so the hot path pays a single branch.
        self._probation: "Optional[OrderedDict[int, None]]" = None
        self._protected: "Optional[OrderedDict[int, None]]" = None
        self._protected_cap = 0
        if policy == "2q":
            self._probation = OrderedDict()
            self._protected = OrderedDict()
            self._protected_cap = max(1, int(capacity * protected_fraction))
        #: Observability hooks: a (usually null) tracer receiving
        #: ``buffer.*`` events, and metrics instruments when attached via
        #: :func:`repro.obs.attach_metrics`.  Both read-only for the pool's
        #: own state — they never change eviction or write decisions.
        self.tracer = NULL_TRACER
        self.metrics = None
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._batch_depth = 0
        self._batch_deferred: set[int] = set()
        # Batch-mode eviction candidates: pages last seen clean (admitted by
        # a fetch miss, flushed, or unpinned).  Entries may be stale — the
        # index layer dirties pages without telling the pool — so the victim
        # scan re-checks and discards; each page re-enters only on another
        # clean transition, keeping eviction amortized O(1) even when every
        # frame is dirty.
        self._maybe_clean: Dict[int, None] = {}
        #: Set by :meth:`enable_locking`; ``None`` means unguarded.
        self._lock: Optional[threading.RLock] = None
        self._entry_guard: Optional[_EntryGuard] = None

    # -- thread-safety guard rails ----------------------------------------------

    def enable_locking(self) -> threading.RLock:
        """Serialize the pool's public protocol behind one ``RLock``.

        Idempotent; returns the lock so callers holding several pages
        across calls (splits) can take it around the whole window.  The
        methods in ``_GUARDED_METHODS`` are rebound on *this instance*, so
        pools that never call this keep the branch-free fast path.
        """
        if self._lock is None:
            self._lock = threading.RLock()
            lock = self._lock

            def locked(method):
                @functools.wraps(method)
                def wrapper(*args, **kwargs):
                    with lock:
                        return method(*args, **kwargs)
                return wrapper

            for name in _GUARDED_METHODS:
                setattr(self, name, locked(getattr(self, name)))
        return self._lock

    def enable_concurrency_assertions(self) -> None:
        """Detect (don't prevent) concurrent unlocked access, for tests.

        Rebinds the public protocol behind a re-entrancy-aware entry
        guard: a second thread entering while another is inside raises
        :class:`~repro.errors.ConcurrentAccessError`.  Call *before*
        :meth:`enable_locking` if combining both (the lock then wraps the
        guard, which consequently never fires).
        """
        if self._entry_guard is None:
            self._entry_guard = _EntryGuard()
            for name in _GUARDED_METHODS:
                setattr(self, name,
                        self._entry_guard.wrap(getattr(self, name)))

    # -- core protocol ---------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Return the page, reading it from disk on a miss (counted)."""
        self.stats.logical_reads += 1
        page = self._frames.get(page_id)
        if page is not None:
            self._frames.move_to_end(page_id)
            if self._probation is not None:
                self._touch_2q(page_id)
            if self.tracer.enabled:
                self.tracer.event("buffer.hit", page=page_id)
            return page
        if self.tracer.enabled:
            self.tracer.event("buffer.miss", page=page_id)
        page = self.disk.read(page_id)
        self.stats.reads += 1
        self._maybe_clean[page_id] = None
        self._admit(page, keep=True)
        return page

    def allocate(self, capacity: int, kind: str = "raw") -> Page:
        """Allocate a fresh page; it enters the buffer dirty (will be written)."""
        page = self.disk.allocate(capacity, kind)
        self.stats.allocations += 1
        page.dirty = True
        # Candidate from birth: a batch-mode victim scan then sees the page,
        # defers it (it is dirty) and counts the coalesced write.
        self._maybe_clean[page.page_id] = None
        self._admit(page)
        return page

    def free(self, page_id: int) -> None:
        """Drop a page from buffer and disk (page-disposal optimization).

        A freed page that was never flushed costs no write; one already on
        disk is released without further I/O (freeing is a metadata update).
        """
        if self._pins.get(page_id, 0) > 0:
            raise BufferPoolError(f"cannot free pinned page {page_id}")
        self._frames.pop(page_id, None)
        self._maybe_clean.pop(page_id, None)
        if self._probation is not None:
            self._probation.pop(page_id, None)
            self._protected.pop(page_id, None)
        self.disk.free(page_id)
        self.stats.frees += 1

    def flush(self, page_id: int) -> None:
        """Write one page through to disk if dirty (counted)."""
        page = self._frames.get(page_id)
        if page is None:
            return
        if page.dirty:
            self.disk.write(page)
            self.stats.writes += 1
            page.dirty = False
            self._maybe_clean[page_id] = None

    def flush_all(self) -> None:
        """Write every dirty buffered page (end-of-run checkpoint)."""
        for pid in list(self._frames.keys()):
            self.flush(pid)

    def clear(self) -> None:
        """Flush then empty the buffer (cold-cache start for a query phase)."""
        if any(count > 0 for count in self._pins.values()):
            raise BufferPoolError("cannot clear buffer while pages are pinned")
        self.flush_all()
        self._frames.clear()
        self._pins.clear()
        self._maybe_clean.clear()
        if self._probation is not None:
            self._probation.clear()
            self._protected.clear()

    # -- batch windows ----------------------------------------------------------

    def begin_batch(self) -> None:
        """Open a (nestable) batch window that defers dirty-page evictions.

        While the window is open, :meth:`_evict_if_needed` skips dirty frames
        when hunting for a victim, so a page mutated by many events in the
        batch is written back once by :meth:`flush_batch` instead of once per
        eviction.  The first deferral of each page per window increments
        ``IOStats.coalesced_writes``.
        """
        self._batch_depth += 1

    def flush_batch(self) -> int:
        """Write every dirty frame once and trim the pool back to capacity.

        Returns the number of pages written.  Pinned dirty pages are written
        in place (writing does not evict); only clean, unpinned frames are
        then evicted until the pool is within ``capacity`` again.
        """
        written = 0
        for page in self._frames.values():
            if page.dirty:
                self.disk.write(page)
                self.stats.writes += 1
                page.dirty = False
                written += 1
        self._batch_deferred.clear()
        self._maybe_clean = dict.fromkeys(self._frames)
        self._evict_if_needed()
        if self.metrics is not None:
            self.metrics.flush_batch_pages.observe(written)
        return written

    def end_batch(self) -> None:
        """Close one batch window level; the outermost close flushes."""
        if self._batch_depth <= 0:
            raise BufferPoolError("end_batch() without matching begin_batch()")
        self._batch_depth -= 1
        if self._batch_depth == 0:
            self.flush_batch()

    @property
    def in_batch(self) -> bool:
        """True while at least one batch window is open."""
        return self._batch_depth > 0

    # -- pinning ----------------------------------------------------------------

    def pin(self, page_id: int) -> None:
        """Protect a buffered page from eviction (nestable)."""
        if page_id not in self._frames:
            raise BufferPoolError(f"cannot pin non-resident page {page_id}")
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        """Release one pin level."""
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        if count == 1:
            del self._pins[page_id]
            if page_id in self._frames:
                self._maybe_clean[page_id] = None
        else:
            self._pins[page_id] = count - 1

    @contextmanager
    def pinned(self, page: Page) -> Iterator[Page]:
        """Context manager pinning ``page`` for the duration of a block."""
        self.pin(page.page_id)
        try:
            yield page
        finally:
            self.unpin(page.page_id)

    # -- internals ----------------------------------------------------------------

    def _admit(self, page: Page, keep: bool = False) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        if self._probation is not None and \
                page.page_id not in self._protected:
            # First (re-)admission lands in probation; only a later
            # re-reference earns protection.
            self._probation[page.page_id] = None
            self._probation.move_to_end(page.page_id)
        # A fetched page is clean and not yet pinned (callers pin only
        # after fetch returns), so without the exclusion an over-committed
        # pool whose other frames are all pinned or batch-deferred would
        # evict the very page it is admitting — and the caller's pin()
        # would then fail on a non-resident page.  A freshly *allocated*
        # page deliberately stays evictable: with every other frame pinned
        # it spills (written back immediately) while the caller's
        # reference stays usable.
        self._evict_if_needed(keep=page.page_id if keep else None)

    def _touch_2q(self, page_id: int) -> None:
        """Segmented-LRU re-reference: promote, or refresh protection."""
        if page_id in self._protected:
            self._protected.move_to_end(page_id)
            return
        self._probation.pop(page_id, None)
        self._protected[page_id] = None
        if len(self._protected) > self._protected_cap:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None
            self._probation.move_to_end(demoted)

    def _evict_if_needed(self, keep: Optional[int] = None) -> None:
        while len(self._frames) > self.capacity:
            victim_id = self._pick_victim(keep)
            if victim_id is None:
                # No evictable victim (everything pinned, or dirty inside a
                # batch window); allow transient over-commit rather than
                # deadlock, and make the violation observable.
                self.stats.overcommit += 1
                if self.tracer.enabled:
                    self.tracer.event("buffer.overcommit",
                                      resident=len(self._frames))
                if self.metrics is not None:
                    self.metrics.overcommits.inc()
                return
            victim = self._frames.pop(victim_id)
            self._maybe_clean.pop(victim_id, None)
            if self._probation is not None:
                self._probation.pop(victim_id, None)
                self._protected.pop(victim_id, None)
            if self.tracer.enabled:
                self.tracer.event("buffer.evict", page=victim_id,
                                  dirty=victim.dirty)
            if self.metrics is not None:
                self.metrics.evictions.inc()
            if victim.dirty:
                self.disk.write(victim)
                self.stats.writes += 1
                victim.dirty = False
            else:
                # A clean victim's records already match its on-disk bytes;
                # park them in the disk manager's decoded-page cache (if
                # any) so a re-read skips the decode.  Dirty victims are
                # parked by the write-back above.
                decoded = getattr(self.disk, "decoded_cache", None)
                if decoded is not None and victim.records is not None:
                    decoded.put(victim_id, victim.kind, victim.records,
                                victim.capacity)

    def _pick_victim(self, keep: Optional[int] = None) -> Optional[int]:
        if not self._batch_depth:
            if self._probation is not None:
                # Scan resistance: once-touched pages (probation) go
                # first; the protected segment is only raided when every
                # probationary page is pinned or probation is empty.
                for segment in (self._probation, self._protected):
                    for pid in segment:  # OrderedDict iterates LRU-first
                        if pid != keep and self._pins.get(pid, 0) == 0:
                            return pid
                return None
            for pid in self._frames:  # OrderedDict iterates LRU-first
                if pid != keep and self._pins.get(pid, 0) == 0:
                    return pid
            return None
        # Batch window: only clean pages are evictable; walk the candidate
        # list instead of rescanning every (mostly dirty) frame.  A stale
        # candidate that turned dirty is deferred — kept resident so later
        # events coalesce into flush_batch's single write — and counted
        # once per window in ``coalesced_writes``.
        kept_candidate = False
        try:
            while self._maybe_clean:
                pid = next(iter(self._maybe_clean))
                del self._maybe_clean[pid]
                if pid == keep:
                    kept_candidate = True  # restored below, stays a candidate
                    continue
                page = self._frames.get(pid)
                if page is None:
                    continue
                if self._pins.get(pid, 0) > 0:
                    continue  # re-enters the candidate list on unpin
                if page.dirty:
                    if pid not in self._batch_deferred:
                        self._batch_deferred.add(pid)
                        self.stats.coalesced_writes += 1
                    continue
                return pid
            return None
        finally:
            if kept_candidate:
                self._maybe_clean[keep] = None

    # -- introspection ----------------------------------------------------------

    @property
    def resident_page_ids(self) -> list[int]:
        """Page ids currently buffered, LRU first (debug/tests)."""
        return list(self._frames.keys())

    def is_resident(self, page_id: int) -> bool:
        """True when the page currently occupies a buffer frame."""
        return page_id in self._frames

    @property
    def probation_page_ids(self) -> list[int]:
        """Probationary segment, LRU first (``"2q"`` policy only)."""
        if self._probation is None:
            raise BufferPoolError("pool does not run the 2q policy")
        return list(self._probation.keys())

    @property
    def protected_page_ids(self) -> list[int]:
        """Protected segment, LRU first (``"2q"`` policy only)."""
        if self._protected is None:
            raise BufferPoolError("pool does not run the 2q policy")
        return list(self._protected.keys())
