"""Paged storage engine: the substrate every index in this library runs on.

The paper's experiments are driven by counted disk-page I/Os (their headline
metric is ``I/Os x 10 ms + CPU time``).  This package provides exactly that
substrate:

* :class:`~repro.storage.page.Page` — a fixed-capacity page holding records.
* :class:`~repro.storage.disk.DiskManager` — page allocation and persistence;
  an in-memory implementation for fast simulation and a file-backed one for
  durability tests.
* :class:`~repro.storage.buffer.BufferPool` — an LRU buffer with pin/unpin
  semantics and exact physical read/write counters.
* :class:`~repro.storage.stats.IOStats` / :class:`~repro.storage.stats.CostModel`
  — the paper's estimated-time metric.
* :mod:`~repro.storage.serialization` — fixed-width ``struct`` codecs used by
  the file-backed manager and by capacity computations (records-per-page for a
  4 KB page, the paper's setting).
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager, FileDiskManager, InMemoryDiskManager
from repro.storage.page import Page
from repro.storage.serialization import DecodedPageCache
from repro.storage.stats import CostModel, IOStats

__all__ = [
    "BufferPool",
    "CostModel",
    "DecodedPageCache",
    "DiskManager",
    "FileDiskManager",
    "InMemoryDiskManager",
    "IOStats",
    "Page",
]
