"""Write-ahead update log: checkpoint + replay recovery.

The transaction-time model makes recovery the textbook two-piece story:

* a **checkpoint** (:mod:`repro.storage.checkpoint`) is a consistent
  version of the whole index — updates never rewrite history, so any
  between-updates snapshot is sound;
* the **update log** records every ``insert``/``delete`` accepted after
  the last checkpoint, in arrival order.  Recovery loads the checkpoint
  and replays the log tail; determinism of the indexes makes the replayed
  state byte-for-byte equivalent to the lost one.

Records are newline-delimited ``op,key,value,time`` lines.  A crash can
leave a torn final line; :meth:`WriteAheadLog.replay` stops at the first
malformed record, which is exactly the prefix that was durably accepted.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional

from repro.errors import StorageError
from repro.workloads.generator import UpdateEvent

LOG_FILE = "updates.wal"


class WriteAheadLog:
    """Append-only update log under ``directory``.

    Parameters
    ----------
    directory:
        Where the log file lives (created if missing).
    fsync:
        Force each record to stable storage before returning (durable but
        slow); off by default for tests and simulation.
    """

    def __init__(self, directory: str, fsync: bool = False) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, LOG_FILE)
        self.fsync = fsync
        # Line-buffered append handle; kept open across records.
        self._handle = open(self.path, "a", buffering=1)

    # -- writes -------------------------------------------------------------------

    def append(self, op: str, key: int, value: float, t: int) -> None:
        """Log one accepted update (call *before* applying it)."""
        if op not in ("insert", "delete"):
            raise StorageError(f"unknown log op {op!r}")
        self._handle.write(f"{op},{key},{value!r},{t}\n")
        if self.fsync:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def truncate(self) -> None:
        """Drop every record (call right after a checkpoint completes)."""
        self._handle.close()
        self._handle = open(self.path, "w", buffering=1)

    def close(self) -> None:
        """Release the file handle (the log file itself stays)."""
        self._handle.close()

    # -- reads --------------------------------------------------------------------

    def replay(self) -> Iterator[UpdateEvent]:
        """Yield logged updates in order, stopping at a torn final record."""
        self._handle.flush()
        if not os.path.exists(self.path):
            return
        with open(self.path) as fh:
            for line in fh:
                event = self._parse(line)
                if event is None:
                    break
                yield event

    def records(self) -> List[UpdateEvent]:
        """The whole intact log as a list."""
        return list(self.replay())

    def __len__(self) -> int:
        return sum(1 for _ in self.replay())

    @staticmethod
    def _parse(line: str) -> Optional[UpdateEvent]:
        line = line.strip()
        if not line:
            return None
        parts = line.split(",")
        if len(parts) != 4:
            return None
        op, key_raw, value_raw, time_raw = parts
        if op not in ("insert", "delete"):
            return None
        try:
            return UpdateEvent(op, int(key_raw), float(value_raw),
                               int(time_raw))
        except ValueError:
            return None
