"""Write-ahead update log: checkpoint + replay recovery.

The transaction-time model makes recovery the textbook two-piece story:

* a **checkpoint** (:mod:`repro.storage.checkpoint`) is a consistent
  version of the whole index — updates never rewrite history, so any
  between-updates snapshot is sound;
* the **update log** records every ``insert``/``delete`` accepted after
  the last checkpoint, in arrival order.  Recovery loads the checkpoint
  and replays the log tail; determinism of the indexes makes the replayed
  state byte-for-byte equivalent to the lost one.

Records are newline-delimited ``seq,op,key,value,time`` lines, where
``seq`` is a sequence number that increases monotonically for the life of
the log directory — it keeps counting across :meth:`truncate` calls and
reopens.  Sequence numbers make replay *idempotent*: a checkpoint records
the last sequence it covers, so recovery after a crash in the window
between "checkpoint written" and "log truncated" skips the already-applied
prefix instead of double-applying it (see
:meth:`repro.core.warehouse.TemporalWarehouse.checkpoint`).  Legacy
four-field ``op,key,value,time`` lines (pre-sequence logs) still parse,
numbered by position.

A crash can leave a torn final line; :meth:`WriteAheadLog.replay` stops at
the first malformed record, which is exactly the prefix that was durably
accepted.
"""

from __future__ import annotations

import os
import threading
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError, WALTruncatedError
from repro.workloads.generator import UpdateEvent

LOG_FILE = "updates.wal"


class WriteAheadLog:
    """Append-only update log under ``directory``.

    Parameters
    ----------
    directory:
        Where the log file lives (created if missing).
    fsync:
        Force each record to stable storage before returning (durable but
        slow); off by default for tests and simulation.
    """

    def __init__(self, directory: str, fsync: bool = False) -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, LOG_FILE)
        self.fsync = fsync
        # A crash mid-append can leave a torn final line.  Replay already
        # ignores it (it was never acknowledged), but appending *after*
        # it would glue the next record onto the fragment and stop every
        # future replay at the merged garbage line — so the new owner
        # trims it before appending.
        self._trim_torn_tail()
        #: Highest sequence number ever appended (0 for a fresh log).
        #: Restored by scanning the existing file on open; a checkpoint
        #: owner that truncated the file re-seeds it via :meth:`bump_seq`.
        self.last_seq = self._scan_last_seq()
        # Line-buffered append handle; kept open across records.
        self._handle = open(self.path, "a", buffering=1)

    def _trim_torn_tail(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb+") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size == 0:
                return
            window = min(size, 4096)  # records are tens of bytes
            fh.seek(size - window)
            tail = fh.read(window)
            if tail.endswith(b"\n"):
                return
            cut = tail.rfind(b"\n")
            keep = size - window + (cut + 1 if cut >= 0 else 0)
            fh.truncate(keep)

    def _scan_last_seq(self) -> int:
        if not os.path.exists(self.path):
            return 0
        last = 0
        with open(self.path) as fh:
            for position, line in enumerate(fh, start=1):
                parsed = self._parse(line, position)
                if parsed is None:
                    break
                last = parsed[0]
        return last

    # -- writes -------------------------------------------------------------------

    def append(self, op: str, key: int, value: float, t: int) -> int:
        """Log one accepted update (call *before* applying it).

        Returns the record's sequence number.
        """
        if op not in ("insert", "delete"):
            raise StorageError(f"unknown log op {op!r}")
        self.last_seq += 1
        self._handle.write(f"{self.last_seq},{op},{key},{value!r},{t}\n")
        if self.fsync:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        return self.last_seq

    def append_batch(self, records: Sequence[Tuple[str, int, float, int]]
                     ) -> List[int]:
        """Log a batch of accepted updates with **one** write + flush.

        ``records`` is a sequence of ``(op, key, value, t)`` tuples; the
        whole group lands in the file through a single ``write`` call and
        (when ``fsync`` is on) a single flush + fsync — the group-commit
        amortization that makes concurrent writers cheaper than N
        independent :meth:`append` calls.  Record format is unchanged, so
        replay, cursors and replication see the batch as N ordinary
        records.  Returns the assigned sequence numbers in order.

        All-or-nothing: every record is validated before any sequence
        number is assigned, so a bad op mid-batch cannot burn sequence
        numbers for records that never reached the file.
        """
        for op, _key, _value, _t in records:
            if op not in ("insert", "delete"):
                raise StorageError(f"unknown log op {op!r}")
        seqs: List[int] = []
        lines: List[str] = []
        for op, key, value, t in records:
            self.last_seq += 1
            seqs.append(self.last_seq)
            lines.append(f"{self.last_seq},{op},{key},{value!r},{t}\n")
        if lines:
            self._handle.write("".join(lines))
            if self.fsync:
                self._handle.flush()
                os.fsync(self._handle.fileno())
        return seqs

    def bump_seq(self, min_seq: int) -> None:
        """Ensure future appends use sequence numbers above ``min_seq``.

        Called on recovery with the checkpoint's covered sequence: after a
        truncate the file alone no longer remembers how far numbering got,
        and reusing an already-checkpointed number would make a later
        recovery wrongly skip a live record.
        """
        self.last_seq = max(self.last_seq, min_seq)

    def truncate(self) -> None:
        """Drop every record (call right after a checkpoint completes).

        Sequence numbering continues from where it was — truncation frees
        space, it does not restart history.
        """
        self._handle.close()
        self._handle = open(self.path, "w", buffering=1)

    def close(self) -> None:
        """Release the file handle (the log file itself stays).

        Idempotent: closing an already-closed log is a no-op.
        """
        if not self._handle.closed:
            self._handle.close()

    # -- reads --------------------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[UpdateEvent]:
        """Yield logged updates with ``seq > after_seq``, in order,
        stopping at a torn final record."""
        for _seq, event in self.replay_with_seq(after_seq):
            yield event

    def replay_with_seq(self, after_seq: int = 0
                        ) -> Iterator[Tuple[int, UpdateEvent]]:
        """Yield ``(seq, event)`` pairs with ``seq > after_seq``."""
        if not self._handle.closed:
            self._handle.flush()
        if not os.path.exists(self.path):
            return
        with open(self.path) as fh:
            for position, line in enumerate(fh, start=1):
                parsed = self._parse(line, position)
                if parsed is None:
                    break
                seq, event = parsed
                if seq > after_seq:
                    yield seq, event

    def records(self) -> List[UpdateEvent]:
        """The whole intact log as a list."""
        return list(self.replay())

    def __len__(self) -> int:
        return sum(1 for _ in self.replay())

    @staticmethod
    def _parse(line: str,
               position: int) -> Optional[Tuple[int, UpdateEvent]]:
        line = line.strip()
        if not line:
            return None
        parts = line.split(",")
        if len(parts) == 5:
            seq_raw, op, key_raw, value_raw, time_raw = parts
        elif len(parts) == 4:
            # Legacy pre-sequence record: number it by file position.
            op, key_raw, value_raw, time_raw = parts
            seq_raw = str(position)
        else:
            return None
        if op not in ("insert", "delete"):
            return None
        try:
            return int(seq_raw), UpdateEvent(op, int(key_raw),
                                             float(value_raw), int(time_raw))
        except ValueError:
            return None


class _CommitEntry:
    """One writer's queued records plus the leader's published outcome."""

    __slots__ = ("records", "seqs", "error", "done")

    def __init__(self, records: List[Tuple[str, int, float, int]]) -> None:
        self.records = records
        self.seqs: Optional[List[int]] = None
        self.error: Optional[BaseException] = None
        self.done = False


class GroupCommitter:
    """Leader/follower group commit over one :class:`WriteAheadLog`.

    Concurrent writer threads call :meth:`commit`; whichever thread finds
    no flush in progress becomes the **leader**, drains every queued
    entry into a single :meth:`WriteAheadLog.append_batch` call (one
    ``write``, one flush + fsync for the whole group) and publishes each
    follower's assigned sequence numbers.  Followers block until their
    group's leader publishes; entries queued while a flush is in flight
    form the *next* group, whose leader is whichever of them wakes first.
    The WAL handle is only ever touched by one thread at a time, and
    arrival order within a group is preserved, so replay order equals
    acknowledgement order.

    Stats (read without the lock; monotonically increasing):

    * ``groups`` — leader flushes performed;
    * ``records`` — records committed across all groups;
    * ``max_group`` — largest single group flushed (the amortization
      factor the bench reports).
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self._cond = threading.Condition()
        self._queue: List[_CommitEntry] = []
        self._leader_active = False
        self.groups = 0
        self.records = 0
        self.max_group = 0

    def append(self, op: str, key: int, value: float, t: int) -> int:
        """Group-committed equivalent of :meth:`WriteAheadLog.append`."""
        return self.commit([(op, key, value, t)])[0]

    def commit(self, records: Sequence[Tuple[str, int, float, int]]
               ) -> List[int]:
        """Durably log ``records`` as one atomic suffix of some group.

        Blocks until a leader (possibly this thread) has flushed the
        group containing these records; returns their sequence numbers.
        """
        entry = _CommitEntry(list(records))
        with self._cond:
            self._queue.append(entry)
            while not entry.done and self._leader_active:
                self._cond.wait()
            if not entry.done:
                # No flush in flight: this thread leads the group.
                self._leader_active = True
                group, self._queue = self._queue, []
        if not entry.done:
            self._flush_group(group)
        if entry.error is not None:
            raise entry.error
        assert entry.seqs is not None
        return entry.seqs

    def _flush_group(self, group: List[_CommitEntry]) -> None:
        # Runs outside the mutex so arriving writers queue the next group
        # concurrently with this flush.
        size = sum(len(e.records) for e in group)
        try:
            flat = [record for e in group for record in e.records]
            seqs = self.wal.append_batch(flat)
            cursor = 0
            for e in group:
                e.seqs = seqs[cursor:cursor + len(e.records)]
                cursor += len(e.records)
        except BaseException as exc:  # publish the failure to followers
            for e in group:
                e.error = exc
        finally:
            with self._cond:
                for e in group:
                    e.done = True
                self._leader_active = False
                self.groups += 1
                self.records += size
                self.max_group = max(self.max_group, size)
                self._cond.notify_all()

    def stats(self) -> dict:
        """Counters as a flat dict (bench/telemetry surface)."""
        return {"groups": self.groups, "records": self.records,
                "max_group": self.max_group}


class WALCursor:
    """Read-only tail cursor over a log owned by *another* process.

    This is the shipping half of WAL-based replication: a replica polls the
    primary's log file through the shared filesystem (the log is the durable
    record of every acked write, so it survives the primary's death) and
    applies whatever new complete records have appeared since the last poll.

    The cursor tracks a byte offset plus the highest sequence number it has
    returned.  Three hazards of tailing a live file are handled here:

    * **torn tail** — the writer may be mid-line; only ``\\n``-terminated
      lines are consumed, a partial tail is buffered until the next poll;
    * **checkpoint truncation** — the owner truncates the file after a
      checkpoint.  A shrink below the cursor's offset restarts reading at
      byte 0; sequence numbers keep increasing across truncations, so the
      already-seen prefix (``seq <= self.seq``) is skipped idempotently;
    * **lost records** — if the first fresh record's sequence jumps past
      ``self.seq + 1`` the truncation discarded records this cursor never
      saw.  :exc:`~repro.errors.WALTruncatedError` is raised and the reader
      must rebase from the owner's current checkpoint (which by the
      checkpoint protocol covers every truncated record).
    """

    def __init__(self, directory: str, after_seq: int = 0) -> None:
        self.path = os.path.join(directory, LOG_FILE)
        #: Highest sequence number returned so far (or the rebase floor).
        self.seq = after_seq
        self._offset = 0
        self._remainder = b""
        # First bytes of the file as of the last poll.  A truncation that
        # regrows the file to >= our offset is invisible to the size
        # check, but the rewritten head necessarily starts with a later
        # sequence number, so a changed head means "restart at byte 0"
        # (always safe: the seq check deduplicates rereads).
        self._head = b""

    def rebase(self, after_seq: int) -> None:
        """Reposition after the reader reloaded a checkpoint covering
        ``after_seq``; the next poll rereads the file from the start and
        skips the covered prefix."""
        self.seq = after_seq
        self._offset = 0
        self._remainder = b""

    def poll(self) -> List[Tuple[int, UpdateEvent]]:
        """Return the complete records appended since the last poll.

        Raises :exc:`~repro.errors.WALTruncatedError` when records between
        ``self.seq`` and the log's oldest surviving record were truncated
        away, or when a complete-but-corrupt line is hit (both are healed
        by rebasing from the owner's checkpoint).
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as fh:
            head = fh.read(64)
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if self._offset and (size < self._offset
                                 or head != self._head):
                # Truncated under us (possibly rewritten to the same or a
                # larger size): restart from the head; the seq check
                # below deduplicates anything we already returned.
                self._offset = 0
                self._remainder = b""
            self._head = head
            if size == self._offset:
                return []
            fh.seek(self._offset)
            chunk = fh.read()
        self._offset += len(chunk)
        lines = (self._remainder + chunk).split(b"\n")
        self._remainder = lines.pop()  # b"" unless the final line is torn
        out: List[Tuple[int, UpdateEvent]] = []
        for raw in lines:
            if not raw.strip():
                continue
            parsed = WriteAheadLog._parse(raw.decode("utf-8", "replace"),
                                          self.seq + 1)
            if parsed is None:
                raise WALTruncatedError(
                    f"unparseable record in {self.path} after seq "
                    f"{self.seq}; rebase from checkpoint")
            seq, event = parsed
            if seq <= self.seq:
                continue  # reread prefix after a truncation restart
            if seq > self.seq + 1:
                raise WALTruncatedError(
                    f"log gap in {self.path}: cursor at seq {self.seq}, "
                    f"next surviving record is {seq}; rebase from "
                    f"checkpoint")
            self.seq = seq
            out.append((seq, event))
        return out
