"""Disk managers: page allocation and persistence.

Two implementations share one protocol:

* :class:`InMemoryDiskManager` keeps page objects in a dict.  It is the
  default for simulation — I/O *counting* happens in the buffer pool, so a
  real file adds nothing to the paper's metric while costing wall time.
* :class:`FileDiskManager` serializes pages to a single file through the
  codecs in :mod:`repro.storage.serialization`, proving the structures
  survive a real byte round-trip (and giving durability tests a target).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Dict, Iterator, Optional

from repro.errors import PageNotFoundError, StorageError
from repro.obs.tracer import NULL_TRACER
from repro.storage.page import Page
from repro.storage.serialization import (
    DEFAULT_PAGE_BYTES,
    DecodedPageCache,
    decode_page,
    encode_page_image,
)


class DiskManager(ABC):
    """Allocation and persistence protocol all disk managers implement."""

    #: Observability hook: ``disk.read``/``disk.write`` events mark every
    #: physical page transfer.  The shared null tracer makes this one
    #: branch on the (hot) untraced path.
    tracer = NULL_TRACER

    def __init__(self) -> None:
        self._next_page_id = 0

    def allocate(self, capacity: int, kind: str = "raw") -> Page:
        """Create a brand-new empty page and return it (not yet persisted)."""
        page = Page(self._next_page_id, capacity, kind)
        self._next_page_id += 1
        self._register(page)
        return page

    @property
    def allocated_count(self) -> int:
        """Total pages ever allocated (monotone; frees do not decrease it)."""
        return self._next_page_id

    @abstractmethod
    def _register(self, page: Page) -> None:
        """Record a freshly allocated page."""

    @abstractmethod
    def read(self, page_id: int) -> Page:
        """Fetch a page from storage.  Raises :class:`PageNotFoundError`."""

    @abstractmethod
    def write(self, page: Page) -> None:
        """Persist a page image."""

    @abstractmethod
    def free(self, page_id: int) -> None:
        """Release a page (page-disposal optimization).  Freed ids stay dead."""

    @abstractmethod
    def live_page_ids(self) -> Iterator[int]:
        """Iterate ids of pages that are allocated and not freed."""

    @property
    @abstractmethod
    def live_page_count(self) -> int:
        """Number of live (allocated, not freed) pages — the space metric."""


class InMemoryDiskManager(DiskManager):
    """Dict-backed manager; the workhorse for simulation and tests."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: Dict[int, Page] = {}

    def _register(self, page: Page) -> None:
        self._pages[page.page_id] = page

    def read(self, page_id: int) -> Page:
        try:
            page = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(page_id) from None
        if self.tracer.enabled:
            self.tracer.event("disk.read", page=page_id)
        return page

    def write(self, page: Page) -> None:
        # The dict already holds the live object; writing is a no-op beyond
        # validation.  Physical-write accounting lives in the buffer pool.
        if page.page_id not in self._pages:
            raise PageNotFoundError(page.page_id)
        if self.tracer.enabled:
            self.tracer.event("disk.write", page=page.page_id)

    def free(self, page_id: int) -> None:
        if self._pages.pop(page_id, None) is None:
            raise PageNotFoundError(page_id)

    def live_page_ids(self) -> Iterator[int]:
        return iter(self._pages.keys())

    @property
    def live_page_count(self) -> int:
        return len(self._pages)


class FileDiskManager(DiskManager):
    """Single-file page store using the registered record codecs.

    Pages are fixed ``page_bytes`` slots at offset ``page_id * page_bytes``.
    Freed pages are tracked in an in-memory free set; their slots are zeroed.
    Page *capacity* (record count) is a property of the owning index, so
    :meth:`read` requires the caller-supplied capacity hint given at
    construction via ``default_capacity`` or per-page via ``capacity_of``.

    Ownership is **per process**: the free set, known-id set, and capacity
    map live only in the constructing process's memory, so a manager
    reached from any other process (a fork, an unpickled warehouse) would
    silently desynchronize from the file.  Every physical operation
    therefore asserts the caller's pid matches the constructing pid —
    the procpool backend relies on exactly this discipline, rebuilding
    storage inside each worker instead of sharing handles.
    """

    def __init__(self, path: str, page_bytes: int = DEFAULT_PAGE_BYTES,
                 default_capacity: int = 64,
                 decoded_cache: Optional["DecodedPageCache"] = None) -> None:
        super().__init__()
        self.path = path
        self.page_bytes = page_bytes
        self.default_capacity = default_capacity
        #: Optional :class:`~repro.storage.serialization.DecodedPageCache`;
        #: ``None`` keeps the decode-on-every-read behavior.
        self.decoded_cache = decoded_cache
        self._freed: set[int] = set()
        self._known: set[int] = set()
        self._capacities: Dict[int, int] = {}
        self._owner_pid = os.getpid()
        # Create or truncate: a manager owns its file for its lifetime.
        with open(self.path, "wb"):
            pass

    def _check_owner(self) -> None:
        if os.getpid() != self._owner_pid:
            raise StorageError(
                f"FileDiskManager for {self.path!r} is owned by pid "
                f"{self._owner_pid}, not {os.getpid()}; storage never "
                "crosses process boundaries — rebuild it in the worker"
            )

    def _register(self, page: Page) -> None:
        self._known.add(page.page_id)
        self._capacities[page.page_id] = page.capacity
        self.write(page)

    def _offset(self, page_id: int) -> int:
        return page_id * self.page_bytes

    def read(self, page_id: int) -> Page:
        self._check_owner()
        if page_id not in self._known or page_id in self._freed:
            raise PageNotFoundError(page_id)
        if self.decoded_cache is not None:
            entry = self.decoded_cache.take(page_id)
            if entry is not None:
                # The cached records were synced with the on-disk bytes by
                # the write/eviction that parked them here; skip both the
                # byte read and the struct decode loop.
                kind, records, capacity = entry
                page = Page(page_id, capacity, kind)
                page.records = records
                if self.tracer.enabled:
                    self.tracer.event("disk.read", page=page_id, cached=True)
                return page
        with open(self.path, "rb") as fh:
            fh.seek(self._offset(page_id))
            raw = fh.read(self.page_bytes)
        if len(raw) < self.page_bytes:
            raise StorageError(
                f"short read for page {page_id}: {len(raw)} bytes"
            )
        kind, records = decode_page(raw)
        page = Page(page_id, self._capacities.get(page_id, self.default_capacity), kind)
        page.records = records
        if self.tracer.enabled:
            self.tracer.event("disk.read", page=page_id, bytes=len(raw))
        return page

    def write(self, page: Page) -> None:
        self._check_owner()
        if page.page_id in self._freed:
            raise PageNotFoundError(page.page_id)
        image = encode_page_image(page, self.page_bytes)
        self._capacities[page.page_id] = page.capacity
        with open(self.path, "r+b") as fh:
            fh.seek(self._offset(page.page_id))
            fh.write(image)
        if self.decoded_cache is not None and page.records is not None:
            # The records now match the bytes just written; park them so a
            # post-eviction re-read skips the decode.
            self.decoded_cache.put(page.page_id, page.kind, page.records,
                                   page.capacity)
        if self.tracer.enabled:
            self.tracer.event("disk.write", page=page.page_id,
                              bytes=len(image))

    def free(self, page_id: int) -> None:
        self._check_owner()
        if page_id not in self._known or page_id in self._freed:
            raise PageNotFoundError(page_id)
        if self.decoded_cache is not None:
            self.decoded_cache.invalidate(page_id)
        self._freed.add(page_id)
        with open(self.path, "r+b") as fh:
            fh.seek(self._offset(page_id))
            fh.write(b"\0" * self.page_bytes)

    def live_page_ids(self) -> Iterator[int]:
        return iter(sorted(self._known - self._freed))

    @property
    def live_page_count(self) -> int:
        return len(self._known) - len(self._freed)

    def close(self) -> None:
        """Remove the backing file (managers own their file)."""
        if os.path.exists(self.path):
            os.unlink(self.path)
