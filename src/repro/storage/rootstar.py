"""root* — the directory mapping time instants to root pages.

Both multiversion structures in this library (the MVBT and the MVSBT) keep a
forest of roots, each responsible for a disjoint slice of the time axis
(paper section 4.1).  ``root*`` resolves "which root was current at time t".

Two operating modes, matching the paper's discussion of Theorem 2:

* **in-memory** (default) — a sorted array searched with ``bisect``; zero
  I/Os per lookup.  This is the paper's practical remark that keeping the
  roots in a main-memory array reduces query cost to ``O(log_b K)``.
* **paged** — entries additionally live in an append-only B+-tree of
  directory pages fetched through the buffer pool, so lookups pay the
  ``O(log_b n)`` I/O term of Theorem 2.  Appends only ever touch the
  rightmost spine (time is monotone), which keeps maintenance trivial.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.storage.buffer import BufferPool
from repro.storage.serialization import RecordCodec, register_codec

DIRECTORY_KIND = "rootstar"

register_codec(DIRECTORY_KIND, RecordCodec(
    fmt="<qq",
    to_tuple=lambda rec: rec,
    from_tuple=lambda tup: tup,
))


@dataclass(frozen=True)
class RootEntry:
    """One directory entry: the root current from ``start`` (inclusive)
    until the next entry's start."""

    start: int
    root_id: int


class RootDirectory:
    """Append-only time-to-root directory (the paper's ``root*``).

    Entries are appended with strictly increasing ``start``; entry *i* is
    authoritative for ``[entries[i].start, entries[i+1].start)`` and the last
    entry is authoritative up to forever.
    """

    def __init__(self, pool: Optional[BufferPool] = None,
                 page_capacity: int = 64, paged: bool = False) -> None:
        if paged and pool is None:
            raise ValueError("paged root* requires a buffer pool")
        self._entries: List[RootEntry] = []
        self._starts: List[int] = []
        self.paged = paged
        self.pool = pool
        self.page_capacity = page_capacity
        # Paged representation: levels[0] is the leaf level; each level is a
        # list of page ids.  Leaf pages hold (start, root_id) pairs; upper
        # pages hold (first_start_of_child, child_page_id) pairs.
        self._levels: List[List[int]] = []

    # -- writes -------------------------------------------------------------------

    def append(self, start: int, root_id: int) -> None:
        """Register ``root_id`` as current from ``start`` on.

        Re-registering at the *same* instant replaces the previous root for
        that instant (the paper allows many updates per instant; only the
        final root of an instant is ever queried for it).
        """
        if self._entries and start < self._entries[-1].start:
            raise ValueError(
                f"root* appends must be time-ordered: {start} after "
                f"{self._entries[-1].start}"
            )
        if self._entries and start == self._entries[-1].start:
            self._entries[-1] = RootEntry(start, root_id)
            if self.paged:
                self._replace_last_paged(start, root_id)
            return
        self._entries.append(RootEntry(start, root_id))
        self._starts.append(start)
        if self.paged:
            self._append_paged(start, root_id)

    # -- lookups --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def latest(self) -> RootEntry:
        if not self._entries:
            raise LookupError("root* is empty")
        return self._entries[-1]

    def find(self, t: int) -> RootEntry:
        """The root authoritative at instant ``t``.

        In paged mode the equivalent B+-tree descent is also performed so
        the buffer pool charges the I/Os the paper's Theorem 2 accounts for.
        """
        if not self._entries:
            raise LookupError("root* is empty")
        idx = bisect_right(self._starts, t) - 1
        if idx < 0:
            raise LookupError(f"no root registered at or before t={t}")
        if self.paged:
            self._charge_paged_lookup(t)
        return self._entries[idx]

    def roots_intersecting(self, t_start: int, t_end: int) -> Iterator[RootEntry]:
        """Roots whose authority interval intersects ``[t_start, t_end)``."""
        if not self._entries or t_start >= t_end:
            return
        first = max(bisect_right(self._starts, t_start) - 1, 0)
        for idx in range(first, len(self._entries)):
            if self._starts[idx] >= t_end:
                break
            yield self._entries[idx]

    def entries(self) -> Tuple[RootEntry, ...]:
        """Every registered (start, root) entry in time order."""
        return tuple(self._entries)

    @property
    def page_count(self) -> int:
        """Directory pages in paged mode (0 otherwise) — a space term."""
        return sum(len(level) for level in self._levels)

    # -- paged backing ----------------------------------------------------------------

    def _append_paged(self, start: int, root_id: int) -> None:
        assert self.pool is not None
        if not self._levels:
            leaf = self.pool.allocate(self.page_capacity, DIRECTORY_KIND)
            leaf.add((start, root_id))
            self._levels.append([leaf.page_id])
            return
        self._append_at_level(0, (start, root_id))

    def _replace_last_paged(self, start: int, root_id: int) -> None:
        assert self.pool is not None
        leaf = self.pool.fetch(self._levels[0][-1])
        leaf.records[-1] = (start, root_id)
        leaf.mark_dirty()

    def _append_at_level(self, level: int, record: Tuple[int, int]) -> None:
        assert self.pool is not None
        page = self.pool.fetch(self._levels[level][-1])
        if len(page) < page.capacity:
            page.add(record)
            return
        fresh = self.pool.allocate(self.page_capacity, DIRECTORY_KIND)
        fresh.add(record)
        self._levels[level].append(fresh.page_id)
        parent_record = (record[0], fresh.page_id)
        if level + 1 < len(self._levels):
            self._append_at_level(level + 1, parent_record)
        else:
            # The topmost level split: grow a new top page indexing every
            # page of this level (at most two exist at this moment, so the
            # new top always fits).
            top = self.pool.allocate(self.page_capacity, DIRECTORY_KIND)
            for page_id in self._levels[level]:
                first_start = self.pool.fetch(page_id).records[0][0]
                top.add((first_start, page_id))
            self._levels.append([top.page_id])

    def _charge_paged_lookup(self, t: int) -> None:
        """Descend the paged directory so its I/Os hit the buffer pool.

        The topmost level always holds exactly one page (a split there
        immediately grows a new top), so the descent starts unambiguously.
        """
        assert self.pool is not None
        if not self._levels:
            return
        page_id = self._levels[-1][0]
        for _ in range(len(self._levels) - 1):
            page = self.pool.fetch(page_id)
            idx = bisect_right(page.records, t, key=lambda rec: rec[0]) - 1
            page_id = page.records[max(idx, 0)][1]
        self.pool.fetch(page_id)
