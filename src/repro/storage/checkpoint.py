"""Checkpointing: durable snapshots of any paged index.

A checkpoint is a directory with two files:

* ``pages.dat`` — every live page serialized through its registered record
  codec (fixed-width slots, same format as
  :class:`~repro.storage.disk.FileDiskManager`);
* ``meta.json`` — per-page metadata (kind, capacity, the index-specific
  ``page.meta`` dict) plus an index-owned metadata blob (configuration,
  root* entries, clocks).

The transaction-time model makes this simple and sound: updates never
rewrite history, so a checkpoint taken between updates is a consistent
version of the whole index, and the indexes' ``save``/``load`` methods
round-trip through here.  Recovery of in-flight updates (a WAL) is out of
scope — the paper's warehouse applies updates in batch time order, where
replaying the tail of the source stream *is* the recovery protocol.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.serialization import (
    PAGE_HEADER_BYTES,
    codec_for,
    decode_page,
    encode_page_image,
)

PAGES_FILE = "pages.dat"
META_FILE = "meta.json"
MAGIC = "repro-checkpoint-v1"


@dataclass(frozen=True)
class CheckpointInfo:
    """What a checkpoint directory holds, before loading the pages."""

    directory: str
    page_bytes: int
    page_count: int
    index_meta: Dict[str, Any]


def _slot_bytes(pool: BufferPool) -> int:
    """Smallest slot size that fits every live page at full capacity."""
    largest = 2 * PAGE_HEADER_BYTES
    for page_id in pool.disk.live_page_ids():
        page = pool.fetch(page_id)
        codec = codec_for(page.kind)
        needed = PAGE_HEADER_BYTES + page.capacity * codec.record_bytes
        largest = max(largest, needed)
    # Round up to the next multiple of 256 for tidy offsets.
    return (largest + 255) // 256 * 256


def write_checkpoint(pool: BufferPool, index_meta: Dict[str, Any],
                     directory: str) -> CheckpointInfo:
    """Persist every live page of ``pool`` plus ``index_meta``.

    The pool is flushed first; the checkpoint is self-contained and does
    not reference the pool afterwards.
    """
    os.makedirs(directory, exist_ok=True)
    pool.flush_all()
    page_bytes = _slot_bytes(pool)
    page_ids = sorted(pool.disk.live_page_ids())

    pages_meta: Dict[str, Any] = {}
    with open(os.path.join(directory, PAGES_FILE), "wb") as fh:
        for slot, page_id in enumerate(page_ids):
            page = pool.fetch(page_id)
            fh.write(encode_page_image(page, page_bytes))
            pages_meta[str(page_id)] = {
                "slot": slot,
                "capacity": page.capacity,
                "meta": dict(page.meta),
            }

    blob = {
        "magic": MAGIC,
        "page_bytes": page_bytes,
        "next_page_id": pool.disk.allocated_count,
        "pages": pages_meta,
        "index_meta": index_meta,
    }
    with open(os.path.join(directory, META_FILE), "w") as fh:
        json.dump(blob, fh)
    return CheckpointInfo(directory=directory, page_bytes=page_bytes,
                          page_count=len(page_ids), index_meta=index_meta)


def read_checkpoint(directory: str,
                    buffer_pages: int = 64) -> Tuple[BufferPool, Dict[str, Any]]:
    """Rebuild a buffer pool (over an in-memory disk) from a checkpoint.

    Returns ``(pool, index_meta)``.  Page ids, capacities, kinds, records
    and per-page metadata are restored exactly; the disk's allocation
    cursor continues where the checkpointed index left off.
    """
    meta_path = os.path.join(directory, META_FILE)
    pages_path = os.path.join(directory, PAGES_FILE)
    if not (os.path.exists(meta_path) and os.path.exists(pages_path)):
        raise StorageError(f"{directory} is not a checkpoint directory")
    with open(meta_path) as fh:
        blob = json.load(fh)
    if blob.get("magic") != MAGIC:
        raise StorageError(
            f"unrecognized checkpoint format in {directory}: "
            f"{blob.get('magic')!r}"
        )
    page_bytes = blob["page_bytes"]

    disk = InMemoryDiskManager()
    with open(pages_path, "rb") as fh:
        raw = fh.read()
    expected = len(blob["pages"]) * page_bytes
    if len(raw) != expected:
        raise StorageError(
            f"checkpoint pages file is {len(raw)} bytes, expected {expected}"
        )

    from repro.storage.page import Page  # local import to avoid cycles

    for page_id_str, entry in blob["pages"].items():
        page_id = int(page_id_str)
        offset = entry["slot"] * page_bytes
        kind, records = decode_page(raw[offset:offset + page_bytes])
        page = Page(page_id, entry["capacity"], kind)
        page.records = records
        page.meta.update(entry["meta"])
        disk._pages[page_id] = page  # restore under the original id
    disk._next_page_id = blob["next_page_id"]

    pool = BufferPool(disk, capacity=buffer_pages)
    return pool, blob["index_meta"]
