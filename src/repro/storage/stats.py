"""I/O accounting and the paper's estimated-time cost model.

The paper compares methods by *estimated running time*: the number of disk
I/Os multiplied by an average random-access latency (10 ms), plus measured
CPU time (their section 5, following [APR+00]).  :class:`IOStats` counts the
I/Os; :class:`CostModel` turns counts into the estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class IOStats:
    """Mutable physical-I/O counters, owned by a :class:`~repro.storage.buffer.BufferPool`.

    ``reads``/``writes`` count *physical* page transfers (buffer misses and
    evictions of dirty pages), matching what a real DBMS would issue to disk.
    ``logical_reads`` counts every page access, hit or miss, which is useful
    for buffer-sensitivity experiments (Figure 4c).

    ``coalesced_writes`` counts dirty-page write-backs that a batch window
    deferred (the page stayed resident and absorbed further mutations before
    a single :meth:`~repro.storage.buffer.BufferPool.flush_batch` write).
    ``overcommit`` counts eviction attempts that found no unpinned (or, in a
    batch window, no clean) victim and let the pool transiently exceed its
    frame capacity instead of failing.
    """

    reads: int = 0
    writes: int = 0
    logical_reads: int = 0
    allocations: int = 0
    frees: int = 0
    coalesced_writes: int = 0
    overcommit: int = 0

    @property
    def total_ios(self) -> int:
        """Physical I/Os: reads plus writes."""
        return self.reads + self.writes

    @property
    def hit_rate(self) -> float:
        """Buffer hit rate over logical reads (1.0 when everything was cached).

        Clamped to ``[0.0, 1.0]``: after a batch-window overcommit eviction a
        page can be physically re-fetched without a new logical access, so
        ``reads`` may transiently exceed ``logical_reads``.
        """
        if self.logical_reads == 0:
            return 1.0
        return min(1.0, max(0.0, 1.0 - self.reads / self.logical_reads))

    def as_dict(self) -> Dict[str, int]:
        """Every counter as a ``{field name: value}`` dict (reporting/export)."""
        return {name: getattr(self, name) for name in _IOSTAT_FIELDS}

    def reset(self) -> None:
        """Zero every counter (start of a measured phase)."""
        for name in _IOSTAT_FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> "IOStats":
        """Return an immutable-by-convention copy of the current counters."""
        return IOStats(**self.as_dict())

    def _combine(self, other: "IOStats", sign: int) -> "IOStats":
        """Fieldwise ``self + sign * other`` over every counter.

        Iterating the dataclass fields (rather than naming each counter)
        means a newly added counter participates in ``snapshot``/``delta``/
        arithmetic automatically instead of being silently dropped.
        """
        return IOStats(**{
            name: getattr(self, name) + sign * getattr(other, name)
            for name in _IOSTAT_FIELDS
        })

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a prior :meth:`snapshot`)."""
        return self._combine(earlier, -1)

    def __add__(self, other: "IOStats") -> "IOStats":
        return self._combine(other, +1)

    def __sub__(self, other: "IOStats") -> "IOStats":
        """``stats - earlier`` — alias for :meth:`delta`."""
        return self.delta(other)


#: Field names of :class:`IOStats`, computed once; every counter-combining
#: helper iterates this so new counters cannot be dropped from one of them.
_IOSTAT_FIELDS = tuple(f.name for f in fields(IOStats))


@dataclass(frozen=True)
class CostModel:
    """The paper's estimated-running-time metric.

    ``estimated_time = (reads + writes) * io_latency_s + cpu_s``

    The default latency is the paper's 10 ms average random disk access.
    """

    io_latency_s: float = 0.010

    def estimate(self, stats: IOStats, cpu_s: float = 0.0) -> float:
        """Estimated wall time in seconds for ``stats`` plus ``cpu_s`` of CPU."""
        return stats.total_ios * self.io_latency_s + cpu_s


class CpuTimer:
    """Context manager measuring process CPU time (user + system).

    The paper measures CPU cost as user+system time from ``getrusage``;
    :func:`time.process_time` reports the same quantity portably.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "CpuTimer":
        self._start = time.process_time()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.process_time() - self._start


@dataclass
class OperationCost:
    """One measured operation (or batch): I/O delta plus CPU seconds."""

    stats: IOStats = field(default_factory=IOStats)
    cpu_s: float = 0.0

    def estimated_time(self, model: CostModel | None = None) -> float:
        """Apply ``model`` (default: the paper's 10 ms model) to this cost."""
        return (model or CostModel()).estimate(self.stats, self.cpu_s)
