"""The SB-tree: disk-based incremental scalar temporal aggregation ([YW01]).

Semantics.  The tree maintains a function ``V(t)`` over a fixed time domain,
initially the aggregate identity everywhere.  ``insert(start, end, v)``
combines ``v`` into ``V(t)`` for every instant ``t`` in ``[start, end)``;
``query(t)`` returns ``V(t)``.  With the additive SUM/COUNT combine this is
exactly instantaneous temporal aggregation: insert each tuple's interval with
its (lifted) value, delete by inserting the negated value.

Mechanics.  Like a segment tree, an inserted interval's contribution is
*parked* at the O(log) records whose intervals it fully covers — never pushed
to the leaves — so insertion cost is independent of the interval's length and
position.  Like a B-tree, pages hold up to ``b`` records and split evenly on
overflow, keeping the structure balanced and disk-resident.  A query combines
the values of the one record containing ``t`` in each page along a single
root-to-leaf path: ``O(log_b m)`` I/Os for ``m`` leaf records.

The optional *compaction* of [YW01] merges adjacent leaf records holding
equal values (enabled by default); it can shrink the tree when many inserted
intervals share boundaries.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.model import NOW
from repro.errors import QueryError
from repro.storage.buffer import BufferPool
from repro.storage.page import Page
from repro.sbtree.node import (
    INDEX_KIND,
    LEAF_KIND,
    SBRecord,
    check_page_tiling,
    find_record,
    is_leaf,
    record_index,
    span,
)

Combine = Callable[[float, float], float]


def _add(a: float, b: float) -> float:
    return a + b


class SBTree:
    """Scalar temporal aggregation index over a fixed time domain.

    Parameters
    ----------
    pool:
        Buffer pool supplying pages (and counting the I/Os).
    capacity:
        Records per page, the paper's ``b``.  Must be at least 4 so a page
        split always yields two legal pages even after boundary splits.
    domain:
        Half-open time domain ``[lo, hi)``; defaults to ``[1, NOW)`` so
        transaction-time streams with alive tuples (``end = NOW``) fit.
    combine:
        Associative combine of partial aggregates (default ``+``; pass
        ``min``/``max`` via :class:`~repro.sbtree.minmax.MinMaxSBTree`).
    identity:
        Neutral element of ``combine``.
    compact:
        Merge equal-valued adjacent leaf records after each insertion
        (the [YW01] compaction).
    """

    #: Observability hook set by :func:`repro.obs.attach_metrics`; a class
    #: attribute (not set in ``__init__``) because :meth:`load` builds
    #: trees via ``cls.__new__``.
    metrics = None

    def __init__(self, pool: BufferPool, capacity: int = 32,
                 domain: Tuple[int, int] = (1, NOW),
                 combine: Combine = _add, identity: float = 0.0,
                 compact: bool = True) -> None:
        if capacity < 4:
            raise ValueError("SB-tree needs page capacity >= 4")
        if domain[0] >= domain[1]:
            raise ValueError(f"empty time domain {domain}")
        self.pool = pool
        self.capacity = capacity
        self.domain = domain
        self.combine = combine
        self.identity = identity
        self.compact = compact
        root = pool.allocate(capacity, LEAF_KIND)
        root.add(SBRecord(domain[0], domain[1], identity))
        self._root_id = root.page_id
        self._height = 1
        self._insertions = 0

    # -- public API --------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels (1 = the root is a leaf)."""
        return self._height

    @property
    def root_id(self) -> int:
        return self._root_id

    @property
    def insertions(self) -> int:
        """Number of ``insert`` calls accepted so far."""
        return self._insertions

    def insert(self, start: int, end: int, value: float) -> None:
        """Combine ``value`` into every instant of ``[start, end)``.

        The interval is clipped to the tree's domain; an interval entirely
        outside the domain is rejected (clipping to nothing is almost always
        a caller bug).
        """
        lo = max(start, self.domain[0])
        hi = min(end, self.domain[1])
        if lo >= hi:
            raise QueryError(
                f"interval [{start},{end}) lies outside domain {self.domain}"
            )
        root = self.pool.fetch(self._root_id)
        split = self._insert_into(root, lo, hi, value)
        if split is not None:
            self._grow_root(split)
        self._insertions += 1

    def query(self, t: int) -> float:
        """Instantaneous aggregate ``V(t)``; ``O(height)`` page reads."""
        if not (self.domain[0] <= t < self.domain[1]):
            raise QueryError(f"instant {t} outside domain {self.domain}")
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("sbtree.query", t=t):
                return self._descend(t, tracer)
        return self._descend(t, None)

    def _descend(self, t: int, tracer) -> float:
        """Root-to-leaf combine along the path containing ``t``.

        With a live ``tracer`` each page visit opens an ``sbtree.page`` span
        around the fetch and the record lookup, so per-level I/O deltas sum
        to the query total.
        """
        acc = self.identity
        pid = self._root_id
        pages = 0
        while True:
            if tracer is not None:
                with tracer.span("sbtree.page", page=pid) as span:
                    page = self.pool.fetch(pid)
                    span.attrs["kind"] = page.kind
                    record = find_record(page, t)
            else:
                page = self.pool.fetch(pid)
                record = find_record(page, t)
            pages += 1
            acc = self.combine(acc, record.value)
            if is_leaf(page):
                if self.metrics is not None:
                    self.metrics.descent_pages.observe(pages)
                return acc
            pid = record.child

    def query_many(self, instants: List[int]) -> List[float]:
        """Batch point queries (convenience; no special optimization)."""
        return [self.query(t) for t in instants]

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Walk the whole tree verifying tiling, spans, and occupancy.

        Raises ``AssertionError`` on the first violation.  Intended for
        tests; cost is linear in the tree size.
        """
        self._check_page(self._root_id, self.domain[0], self.domain[1],
                         is_root=True, depth=1)

    def _check_page(self, page_id: int, lo: int, hi: int, is_root: bool,
                    depth: int) -> None:
        page = self.pool.fetch(page_id)
        problem = check_page_tiling(page)
        assert problem is None, problem
        records: List[SBRecord] = page.records
        assert span(page) == (lo, hi), (
            f"page {page_id} spans {span(page)}, expected ({lo}, {hi})"
        )
        assert len(records) <= page.capacity, f"page {page_id} overflowed"
        if not is_root:
            # Compaction may merge a page's records down to one (the
            # paper's compaction shrinks record counts without page
            # merging); without it the B-tree split discipline keeps
            # every non-root page at two or more records.
            minimum = 1 if self.compact else 2
            assert len(records) >= minimum, (
                f"non-root page {page_id} holds {len(records)} record(s)"
            )
        if is_leaf(page):
            assert depth == self._height, (
                f"leaf {page_id} at depth {depth}, height {self._height}"
            )
            return
        for record in records:
            assert record.has_child, f"index record without child in {page_id}"
            self._check_page(record.child, record.start, record.end,
                             is_root=False, depth=depth + 1)

    # -- internals ------------------------------------------------------------------

    def _insert_into(self, page: Page, lo: int, hi: int,
                     value: float) -> Optional[List[SBRecord]]:
        """Apply the insertion to ``page``; return replacement records if it split."""
        with self.pool.pinned(page):
            if is_leaf(page):
                self._insert_into_leaf(page, lo, hi, value)
            else:
                self._insert_into_index(page, lo, hi, value)
        if page.overflowed:
            return self._split_page(page)
        return None

    def _insert_into_leaf(self, page: Page, lo: int, hi: int,
                          value: float) -> None:
        records: List[SBRecord] = page.records
        first = record_index(page, lo)
        idx = first
        while idx < len(records) and records[idx].start < hi:
            rec = records[idx]
            inner_lo = max(lo, rec.start)
            inner_hi = min(hi, rec.end)
            if inner_lo == rec.start and inner_hi == rec.end:
                rec.value = self.combine(rec.value, value)
                idx += 1
            else:
                pieces: List[SBRecord] = []
                if rec.start < inner_lo:
                    pieces.append(SBRecord(rec.start, inner_lo, rec.value))
                pieces.append(
                    SBRecord(inner_lo, inner_hi, self.combine(rec.value, value))
                )
                if inner_hi < rec.end:
                    pieces.append(SBRecord(inner_hi, rec.end, rec.value))
                records[idx:idx + 1] = pieces
                idx += len(pieces)
        page.mark_dirty()
        if self.compact:
            self._compact_leaf(page, max(first - 1, 0), idx)

    def _insert_into_index(self, page: Page, lo: int, hi: int,
                           value: float) -> None:
        records: List[SBRecord] = page.records
        idx = record_index(page, lo)
        while idx < len(records) and records[idx].start < hi:
            rec = records[idx]
            if lo <= rec.start and rec.end <= hi:
                # Fully covered: park the value here, never descend.
                rec.value = self.combine(rec.value, value)
                page.mark_dirty()
                idx += 1
                continue
            # Partial overlap (at most two such records): push down.  The
            # value lands somewhere in the child's subtree, so it joins
            # the record's subtree aggregate.
            child = self.pool.fetch(rec.child)
            clipped_lo = max(lo, rec.start)
            clipped_hi = min(hi, rec.end)
            rec.child_agg = self.combine(rec.child_agg, value)
            with self.pool.pinned(page):
                replacement = self._insert_into(child, clipped_lo, clipped_hi,
                                                value)
            if replacement is None:
                idx += 1
            else:
                # Child split: its parent record fans out, one copy per new
                # child, each inheriting this record's parked value (the
                # split already computed each half's subtree aggregate).
                fan_out = [
                    SBRecord(sub.start, sub.end, rec.value, sub.child,
                             sub.child_agg)
                    for sub in replacement
                ]
                records[idx:idx + 1] = fan_out
                page.mark_dirty()
                idx += len(fan_out)

    def _split_page(self, page: Page) -> List[SBRecord]:
        """Split an overflowing page in half; return parent replacement records.

        The original page object is reused for the left half (its id stays
        valid in the parent's other structures); a sibling is allocated for
        the right half.
        """
        records: List[SBRecord] = page.records
        mid = len(records) // 2
        right = self.pool.allocate(self.capacity, page.kind)
        right.records = records[mid:]
        right.dirty = True
        page.records = records[:mid]
        page.mark_dirty()
        left_lo, left_hi = span(page)
        right_lo, right_hi = span(right)
        return [
            SBRecord(left_lo, left_hi, self.identity, page.page_id,
                     self._subtree_agg(page)),
            SBRecord(right_lo, right_hi, self.identity, right.page_id,
                     self._subtree_agg(right)),
        ]

    def _grow_root(self, replacement: List[SBRecord]) -> None:
        root = self.pool.allocate(self.capacity, INDEX_KIND)
        root.records = list(replacement)
        root.dirty = True
        self._root_id = root.page_id
        self._height += 1

    def _subtree_agg(self, page: Page) -> float:
        """Combine of every value parked in ``page``'s subtree.

        Needs only the page itself: each index record carries its child's
        aggregate, so no descent happens.
        """
        acc = self.identity
        for record in page.records:
            acc = self.combine(acc, record.value)
            if record.has_child:
                acc = self.combine(acc, record.child_agg)
        return acc

    def _compact_leaf(self, page: Page, start_idx: int, end_idx: int) -> None:
        """Merge adjacent equal-valued leaf records touched by an insertion."""
        records: List[SBRecord] = page.records
        idx = max(start_idx, 0)
        stop = min(end_idx + 1, len(records))
        while idx + 1 < min(stop, len(records)):
            left, right_rec = records[idx], records[idx + 1]
            if left.value == right_rec.value:
                left.end = right_rec.end
                del records[idx + 1]
                stop -= 1
                page.mark_dirty()
            else:
                idx += 1

    # -- persistence -------------------------------------------------------------

    #: combine functions the checkpoint format can name.
    _NAMED_COMBINES = {"add": _add, "min": min, "max": max}

    def save(self, directory: str) -> None:
        """Checkpoint the tree.  Only the named combine functions (add,
        min, max) survive a round trip; custom callables are rejected."""
        from repro.storage.checkpoint import write_checkpoint

        names = {fn: name for name, fn in self._NAMED_COMBINES.items()}
        if self.combine not in names:
            raise ValueError(
                "only add/min/max combines are checkpointable; "
                "custom combine functions cannot be serialized"
            )
        meta = {
            "type": "sbtree",
            "capacity": self.capacity,
            "domain": list(self.domain),
            "combine": names[self.combine],
            "identity": self.identity,
            "compact": self.compact,
            "root_id": self._root_id,
            "height": self._height,
            "insertions": self._insertions,
        }
        write_checkpoint(self.pool, meta, directory)

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64) -> "SBTree":
        """Reopen a tree from a checkpoint written by :meth:`save`."""
        from repro.storage.checkpoint import read_checkpoint

        pool, meta = read_checkpoint(directory, buffer_pages)
        if meta.get("type") != "sbtree":
            raise ValueError(
                f"checkpoint holds a {meta.get('type')!r}, not an SB-tree"
            )
        tree = cls.__new__(cls)
        tree.pool = pool
        tree.capacity = meta["capacity"]
        tree.domain = tuple(meta["domain"])
        tree.combine = cls._NAMED_COMBINES[meta["combine"]]
        tree.identity = meta["identity"]
        tree.compact = meta["compact"]
        tree._root_id = meta["root_id"]
        tree._height = meta["height"]
        tree._insertions = meta["insertions"]
        return tree

    # -- introspection ------------------------------------------------------------

    def leaf_record_count(self) -> int:
        """Total records across leaf pages (the paper's ``m``)."""
        return sum(
            len(self.pool.fetch(pid))
            for pid in self._all_page_ids()
            if is_leaf(self.pool.fetch(pid))
        )

    def page_count(self) -> int:
        """Total pages in the tree (space metric)."""
        return len(self._all_page_ids())

    def _all_page_ids(self) -> List[int]:
        ids: List[int] = []
        stack = [self._root_id]
        while stack:
            pid = stack.pop()
            ids.append(pid)
            page = self.pool.fetch(pid)
            if not is_leaf(page):
                stack.extend(rec.child for rec in page.records)
        return ids
