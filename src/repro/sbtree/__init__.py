"""The SB-tree family: disk-based scalar temporal aggregation ([YW01]).

The SB-tree combines segment-tree value placement (an inserted interval's
contribution is parked at the O(log) nodes whose spans it fully covers) with
B-tree balance and disk residency.  It is the structure the paper's MVSBT
generalizes — here over the *time* axis for scalar aggregates, inside the
MVSBT over the *key* axis, made partially persistent.

* :class:`~repro.sbtree.tree.SBTree` — insert ``(interval, value)``, query the
  instantaneous aggregate at any instant, both in ``O(log_b m)`` I/Os.
* :class:`~repro.sbtree.cumulative.CumulativeSBTree` — cumulative aggregates
  with arbitrary window offset ``w`` via two SB-trees (paper section 2.2).
* :class:`~repro.sbtree.minmax.MinMaxSBTree` — the insert-only MIN/MAX
  variant (paper section 2.2; open problem (ii) concerns its *range* form).
"""

from repro.sbtree.cumulative import CumulativeSBTree
from repro.sbtree.minmax import MinMaxSBTree
from repro.sbtree.tree import SBTree

__all__ = ["CumulativeSBTree", "MinMaxSBTree", "SBTree"]
