"""Cumulative temporal aggregates with arbitrary window offset (paper §2.2).

The *instantaneous* aggregate at ``t`` covers tuples alive at ``t``; the
*cumulative* aggregate with window offset ``w`` covers every tuple whose
interval intersects the window ``[t - w, t]`` ([YW01], [MLI00]).

Following the paper, two SB-trees suffice for SUM/COUNT/AVG with *any* ``w``
chosen at query time:

* ``alive``  — instantaneous aggregates: tuple ``[s, e)`` inserted over
  ``[s, e)``.
* ``before`` — aggregates of tuples dead strictly before a given instant:
  on (logical) deletion at ``e`` the tuple is inserted over ``[e, domain_end)``,
  so ``before.query(x)`` aggregates exactly the tuples with ``end <= x``.

Then ``cumulative(t, w) = alive(t) + before(t) - before(t - w)``: the alive
term covers tuples still valid at ``t``; the difference of ``before`` terms
covers tuples that died inside the window.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.model import NOW
from repro.errors import QueryError
from repro.storage.buffer import BufferPool
from repro.sbtree.tree import SBTree


class CumulativeSBTree:
    """Two coupled SB-trees answering cumulative SUM/COUNT-style aggregates.

    The API is transaction-time flavoured to match the rest of the library:
    ``insert(start, value)`` opens a tuple, ``close(end, value)`` records its
    (logical) death.  Valid-time usage — where the full interval is known up
    front — is the convenience :meth:`insert_interval`.
    """

    def __init__(self, pool: BufferPool, capacity: int = 32,
                 domain: Tuple[int, int] = (1, NOW),
                 compact: bool = True) -> None:
        self.domain = domain
        self.alive = SBTree(pool, capacity, domain, compact=compact)
        self.before = SBTree(pool, capacity, domain, compact=compact)

    def insert_interval(self, start: int, end: int, value: float) -> None:
        """Register a tuple with fully known interval ``[start, end)``."""
        self.alive.insert(start, end, value)
        if end < self.domain[1]:
            self.before.insert(end, self.domain[1], value)

    def insert(self, start: int, value: float) -> None:
        """Open an alive tuple at ``start`` (transaction-time insertion)."""
        self.alive.insert(start, self.domain[1], value)

    def close(self, start_hint_unused: int, end: int, value: float) -> None:
        """Logically delete at ``end`` a tuple previously opened with ``value``.

        The alive tree receives the compensating negative interval from
        ``end`` on; the before tree starts counting the tuple from ``end``.
        """
        self.alive.insert(end, self.domain[1], -value)
        self.before.insert(end, self.domain[1], value)

    def instantaneous(self, t: int) -> float:
        """Aggregate of tuples alive at instant ``t``."""
        return self.alive.query(t)

    def cumulative(self, t: int, w: int) -> float:
        """Aggregate of tuples whose intervals intersect ``[t - w, t]``."""
        if w < 0:
            raise QueryError(f"window offset must be non-negative, got {w}")
        window_start = t - w
        if window_start < self.domain[0]:
            window_start = self.domain[0]
        result = self.alive.query(t) + self.before.query(t)
        if window_start > self.domain[0]:
            result -= self.before.query(window_start)
        return result
