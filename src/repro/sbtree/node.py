"""SB-tree records and page-level helpers.

An SB-tree page holds between ``b/2`` and ``b`` records, each owning one
contiguous time interval; the records tile the page's span, and an index
record's child subtree covers exactly the record's interval.  The record
``value`` is the partial aggregate parked at this level: a query for instant
``t`` combines the values of the record containing ``t`` in every page along
one root-to-leaf path.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional

from repro.storage.page import INVALID_PAGE_ID, Page
from repro.storage.serialization import RecordCodec, register_codec

LEAF_KIND = "sbtree-leaf"
INDEX_KIND = "sbtree-index"


@dataclass(slots=True)
class SBRecord:
    """One SB-tree record: interval ``[start, end)``, value, optional child.

    ``child_agg`` is the segment-tree augmentation: the combine of every
    value parked anywhere in the child's subtree.  It lets range queries
    absorb a fully-covered child without fetching it (see
    :meth:`repro.sbtree.minmax.MinMaxSBTree.window_query`).  Leaf records
    never read it; SUM trees maintain it as a plain subtree sum.
    """

    start: int
    end: int
    value: float
    child: int = INVALID_PAGE_ID
    child_agg: float = 0.0

    @property
    def has_child(self) -> bool:
        return self.child != INVALID_PAGE_ID

    def contains(self, t: int) -> bool:
        """True when instant ``t`` lies in the record's interval."""
        return self.start <= t < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tail = f", child={self.child}" if self.has_child else ""
        return f"SBRecord([{self.start},{self.end}), v={self.value}{tail})"


_SB_CODEC = RecordCodec(
    fmt="<qqdqd",
    to_tuple=lambda rec: (rec.start, rec.end, rec.value, rec.child,
                          rec.child_agg),
    from_tuple=lambda tup: SBRecord(*tup),
)
register_codec(LEAF_KIND, _SB_CODEC)
register_codec(INDEX_KIND, _SB_CODEC)

#: Serialized width of an SBRecord; used for records-per-page computations.
SB_RECORD_BYTES = _SB_CODEC.record_bytes


def is_leaf(page: Page) -> bool:
    """True for SB-tree leaf pages."""
    return page.kind == LEAF_KIND


def span(page: Page) -> tuple[int, int]:
    """The contiguous interval covered by the page's (sorted) records."""
    records: List[SBRecord] = page.records
    return records[0].start, records[-1].end


def find_record(page: Page, t: int) -> SBRecord:
    """The unique record whose interval contains ``t`` (binary search)."""
    records: List[SBRecord] = page.records
    idx = bisect_right(records, t, key=lambda rec: rec.start) - 1
    record = records[idx]
    assert record.contains(t), f"page {page.page_id} does not cover t={t}"
    return record


def record_index(page: Page, t: int) -> int:
    """Index of the record containing ``t`` within the page's record list."""
    records: List[SBRecord] = page.records
    idx = bisect_right(records, t, key=lambda rec: rec.start) - 1
    return idx


def check_page_tiling(page: Page) -> Optional[str]:
    """Return an error string if the page's records do not tile its span."""
    records: List[SBRecord] = page.records
    if not records:
        return f"page {page.page_id} is empty"
    for left, right in zip(records, records[1:]):
        if left.end != right.start:
            return (
                f"page {page.page_id}: gap or overlap between "
                f"[{left.start},{left.end}) and [{right.start},{right.end})"
            )
        if left.start >= left.end:
            return f"page {page.page_id}: empty record [{left.start},{left.end})"
    if records[-1].start >= records[-1].end:
        return (
            f"page {page.page_id}: empty record "
            f"[{records[-1].start},{records[-1].end})"
        )
    return None
