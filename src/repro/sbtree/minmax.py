"""The min/max SB-tree variant (paper §2.2).

MIN and MAX form a semigroup without inverses, so logical deletion by
negative insertion is impossible — the variant supports *insertions only*
(append-only warehouses, which is also the transaction-time setting of the
paper minus deletions).  Everything else carries over: an interval's value is
parked at covering records with ``min``/``max`` as the combine, and a point
query combines one record per level.

Extending this structure to *range* MIN/MAX temporal aggregates is the
paper's open problem (ii); this class reproduces the scalar tool the paper
builds on.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.model import NOW
from repro.errors import QueryError
from repro.storage.buffer import BufferPool
from repro.sbtree.tree import SBTree


class MinMaxSBTree(SBTree):
    """Insert-only SB-tree maintaining MIN or MAX instantaneous aggregates.

    Parameters mirror :class:`~repro.sbtree.tree.SBTree`; ``mode`` selects
    ``"min"`` or ``"max"``.  The identity is the corresponding infinity, so
    instants no interval ever covered report ``inf`` / ``-inf`` — callers
    that prefer a sentinel should test with :meth:`covered`.
    """

    def __init__(self, pool: BufferPool, capacity: int = 32,
                 domain: Tuple[int, int] = (1, NOW),
                 mode: str = "min", compact: bool = True) -> None:
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        combine = min if mode == "min" else max
        identity = float("inf") if mode == "min" else float("-inf")
        super().__init__(pool, capacity, domain, combine=combine,
                         identity=identity, compact=compact)
        self.mode = mode

    def covered(self, t: int) -> bool:
        """True when at least one inserted interval covers instant ``t``."""
        result = self.query(t)
        return result not in (float("inf"), float("-inf"))

    def window_query(self, start: int, end: int) -> float:
        """MIN/MAX of ``V(t)`` over every instant ``t`` in ``[start, end)``.

        Equivalently: the best value among all inserted intervals that
        intersect the window — for min this is
        ``min { v : [s, e) inserted with v, [s, e) overlaps [start, end) }``
        because an interval's value is a candidate at exactly the instants
        it covers.

        Segment-tree range query over the time axis: a record whose
        interval intersects the window contributes its parked value; a
        child fully inside the window contributes the subtree aggregate
        stored *in the parent record* (no fetch); only the two boundary
        children are descended — ``O(log_b m)`` page reads.
        """
        lo = max(start, self.domain[0])
        hi = min(end, self.domain[1])
        if lo >= hi:
            raise QueryError(
                f"window [{start},{end}) lies outside domain {self.domain}"
            )
        result = self.identity
        stack = [self.root_id]
        while stack:
            page = self.pool.fetch(stack.pop())
            for record in page.records:
                if record.end <= lo or record.start >= hi:
                    continue
                # The parked value covers an instant inside the window.
                result = self.combine(result, record.value)
                if record.has_child:
                    if lo <= record.start and record.end <= hi:
                        result = self.combine(result, record.child_agg)
                    else:
                        stack.append(record.child)
        return result

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64) -> "MinMaxSBTree":
        """Reopen from a checkpoint, restoring the min/max mode."""
        tree = super().load(directory, buffer_pages)
        tree.mode = "min" if tree.combine is min else "max"
        return tree
