"""TQL: the warehouse manager's text interface.

Loads a generated warehouse and answers the kind of questions the paper's
introduction motivates — as one-line text queries, with the planner's
decision available via EXPLAIN.  Also demonstrates durable operation:
updates are write-ahead logged and the warehouse recovers after a
simulated crash.

Run:  python examples/tql_queries.py
"""

import tempfile

from repro.core.warehouse import TemporalWarehouse
from repro.tql import execute, explain
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset


def main() -> None:
    config = paper_config("uniform-long", scale=0.001)
    dataset = generate_dataset(config)

    with tempfile.TemporaryDirectory() as directory:
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=config.key_space, page_capacity=24)
        dataset.replay_into(warehouse)
        print(f"warehouse: {len(dataset)} tuples over "
              f"{dataset.unique_keys} keys (WAL-protected)\n")

        t_mid = config.time_space[1] // 2
        queries = [
            "SELECT COUNT(*)",
            "SELECT SUM(value)",
            f"SELECT AVG(value) WHERE time AT {t_mid}",
            ("SELECT SUM(value) WHERE key IN [1, 500000000) "
             f"AND time DURING [1, {t_mid})"),
            "SELECT MIN(value)",
            "SELECT MAX(value)",
            f"SELECT TIMELINE(COUNT, 4) WHERE time DURING [1, {t_mid})",
        ]
        for text in queries:
            result = execute(warehouse, text)
            if isinstance(result, list):
                print(f"{text}\n  ->")
                for bucket, value in result:
                    print(f"     {bucket}: {value}")
            else:
                print(f"{text}\n  -> {result}")
        print()

        # EXPLAIN shows which physical plan each aggregate takes.
        for text in ("SELECT SUM(value)",
                     "SELECT SUM(value) WHERE key = 7 AND time AT 5",
                     "SELECT MAX(value)"):
            print(f"EXPLAIN {text}\n  -> {explain(warehouse, text)}")
        print()

        # Crash recovery: drop the in-memory warehouse, reopen from the
        # checkpoint-less directory — the WAL replays every update.
        before = execute(warehouse, "SELECT COUNT(*)")
        warehouse.close()
        recovered = TemporalWarehouse.open_durable(
            directory, key_space=config.key_space, page_capacity=24)
        after = execute(recovered, "SELECT COUNT(*)")
        assert before == after
        print(f"recovered from WAL: COUNT(*) = {after} (unchanged)")
        recovered.close()


if __name__ == "__main__":
    main()
