"""The paper's Figure 3, live: watch the MVSBT evolve record by record.

Replays the running example of section 4.3 (b=6, f=0.5) and prints every
page's records after each insertion — the same states the paper draws:
the three-way split of a partly-covered record, the aggregation-in-a-page
optimization leaving fully-covered records untouched, the overflow that
triggers a time split plus key split (note the prefix folded into the
first record of the higher page), the recursive insertion, and the final
time merge.

Run:  python examples/figure3_walkthrough.py
"""

from repro.core.model import NOW
from repro.mvsbt.records import INDEX_KIND
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

MAXKEY = 10**6


def fmt_record(record) -> str:
    end = "now" if record.end == NOW else str(record.end)
    high = "max" if record.high == MAXKEY else str(record.high)
    text = (f"[{record.low:>3},{high:>3}) x [{record.start},{end:>3})  "
            f"value={record.value:+.0f}")
    if hasattr(record, "child"):
        text += f"  -> page {record.child}"
    if not record.alive:
        text += "   (dead)"
    return text


def dump(tree: MVSBT, label: str) -> None:
    print(f"--- {label}")
    for page_id in sorted(tree.page_ids()):
        page = tree.pool.fetch(page_id)
        kind = "index" if page.kind == INDEX_KIND else "leaf"
        role = " (root)" if page_id == tree.root_id else ""
        print(f"  page {page_id} [{kind}]{role}:")
        for record in sorted(page.records,
                             key=lambda r: (r.low, r.start)):
            print(f"    {fmt_record(record)}")
    counters = tree.counters
    print(f"  splits: time={counters.time_splits} key={counters.key_splits}"
          f"  merges: time={counters.time_merges} key={counters.key_merges}")
    print()


def main() -> None:
    pool = BufferPool(InMemoryDiskManager(), capacity=64)
    tree = MVSBT(pool, MVSBTConfig(capacity=6, strong_factor=0.5),
                 key_space=(1, MAXKEY))
    dump(tree, "figure 3a: the initial root")

    steps = [
        ((20, 2, 1.0), "figure 3b: insert (20,2):+1 — the partly-covered "
                       "record splits in three"),
        ((10, 3, 1.0), "figure 3c: insert (10,3):+1 — only the "
                       "partly-covered record splits (aggregation in a "
                       "page)"),
        ((80, 4, 1.0), "figures 3d-f: insert (80,4):+1 — overflow, time "
                       "split, key split; the higher page's first record "
                       "absorbed the lower page's prefix"),
        ((10, 5, -1.0), "figure 3g: insert (10,5):-1 — first "
                        "fully-covered record splits in the root, then "
                        "recursion into the partly-covered child"),
        ((5, 5, 1.0), "final insert (5,5):+1 — cancels the -1 in the "
                      "root: TIME MERGE resurrects the record killed at "
                      "t=5"),
    ]
    for (key, t, value), label in steps:
        tree.insert(key, t, value)
        dump(tree, label)

    print("point queries across the history "
          "(V(k,t) = sum of deltas with low <= k, alive at t):")
    for (k, t) in [(25, 2), (25, 3), (85, 4), (85, 5), (15, 5), (7, 5)]:
        print(f"  V({k:>2}, t={t}) = {tree.query(k, t):+.0f}")


if __name__ == "__main__":
    main()
