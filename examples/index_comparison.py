"""Index comparison: a miniature of the paper's Figure 4b at your terminal.

Builds the two-MVSBT approach and the naive MVBT plan over the same
generated warehouse, then sweeps the query-rectangle size (QRS) and prints
the estimated-time speedup — the paper's headline experiment, runnable in
seconds.

Run:  python examples/index_comparison.py [scale]
      (scale is the fraction of the paper's 1M-record dataset; default 0.003)
"""

import sys

from repro.bench.experiments import fig4a_space, fig4b_speedup, update_cost
from repro.bench.harness import BenchSettings


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.003
    settings = BenchSettings()

    print(fig4a_space(settings, scale=scale).render())
    print(fig4b_speedup(settings, scale=scale).render())
    print(update_cost(settings, scale=scale).render())

    print("Reading: the two-MVSBT approach pays a constant-factor space "
          "and update premium,\nand in exchange its query cost is flat in "
          "QRS while the naive plan degrades linearly.")


if __name__ == "__main__":
    main()
