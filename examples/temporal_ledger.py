"""A temporal ledger on the full warehouse stack.

Uses :class:`~repro.core.warehouse.TemporalWarehouse` — the MVBT tuple
store plus the two-MVSBT aggregate index behind one facade — to run a bank
ledger: accounts open, change balance, and close over time.  Shows the
cost-based planner (explain), MIN/MAX via the retrieval path (the paper's
open problem (ii)), per-key history, and checkpoint/reopen.

Run:  python examples/temporal_ledger.py
"""

import tempfile

from repro.core.aggregates import MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse


def main() -> None:
    ledger = TemporalWarehouse(key_space=(1, 100_000), page_capacity=16)

    # Day 1-5: accounts open.  Account numbers encode the branch
    # (thousands digit), so branch 3 is the key range [3000, 4000).
    ledger.insert(3001, 1_000.0, t=1)
    ledger.insert(3002, 2_500.0, t=1)
    ledger.insert(4001, 9_000.0, t=2)
    ledger.insert(3003, 400.0, t=3)
    ledger.insert(5001, 7_700.0, t=5)

    # Day 10: account 3001 changes balance; day 15: 3002 closes.
    ledger.update(3001, 1_800.0, t=10)
    ledger.delete(3002, t=15)

    branch3 = KeyRange(3000, 4000)
    month = Interval(1, 31)

    print("branch 3, days 1-30:")
    print(f"  accounts seen:   {ledger.count(branch3, month):.0f}")
    print(f"  balance-sum:     {ledger.sum(branch3, month):,.0f}")
    print(f"  largest balance: {ledger.max(branch3, month):,.0f}")
    print(f"  smallest:        {ledger.min(branch3, month):,.0f}")

    # The planner, inspected: additive aggregates take the MVSBT plan
    # unless the rectangle is nearly empty; MIN/MAX always retrieve.
    print("\nplanner decisions:")
    print("  SUM, branch 3, full month ->",
          ledger.explain(branch3, month, SUM))
    print("  SUM, one account, one day ->",
          ledger.explain(KeyRange(3001, 3002), Interval(4, 5), SUM))
    print("  MIN, branch 3, full month ->",
          ledger.explain(branch3, month, MIN))

    # Per-key history: the two versions of account 3001.
    print("\nhistory of account 3001:")
    for version in ledger.history(3001):
        print(f"  {version.interval}  balance={version.value:,.0f}")

    # Time travel: the branch as of day 12 versus day 20.
    print("\nsnapshot of branch 3 at day 12:",
          ledger.snapshot(branch3, 12))
    print("snapshot of branch 3 at day 20:",
          ledger.snapshot(branch3, 20))

    # Durability: checkpoint, reopen, keep going.
    with tempfile.TemporaryDirectory() as directory:
        ledger.save(directory)
        reopened = TemporalWarehouse.load(directory)
        assert reopened.sum(branch3, month) == ledger.sum(branch3, month)
        reopened.insert(3004, 50.0, t=40)
        print("\nreopened from checkpoint; branch 3 sum over [1, 50):",
              f"{reopened.sum(branch3, Interval(1, 50)):,.0f}")


if __name__ == "__main__":
    main()
