"""Sensor-fleet monitoring: instantaneous, cumulative and range aggregates.

A fleet of sensors comes online and offline over time; each reports a power
draw.  Three questions, three tools from this library:

1. "How many sensors in rack 12-17 were ever active this hour?"  — a
   range-temporal COUNT (the paper's RTA query, two MVSBTs).
2. "What was the total power draw at instant t?"  — a scalar instantaneous
   aggregate (one SB-tree).
3. "What is the total power of sensors active within the last w ticks?"
   — a cumulative aggregate with an arbitrary window offset, chosen at
   query time (two SB-trees, paper section 2.2).

Run:  python examples/sensor_monitoring.py
"""

from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.sbtree.cumulative import CumulativeSBTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

RACK_SIZE = 100          # sensor ids: rack r holds ids [r*100, (r+1)*100)
TIME_HORIZON = 10_000


def pool() -> BufferPool:
    return BufferPool(InMemoryDiskManager(), capacity=64)


def main() -> None:
    rta = RTAIndex(pool(), key_space=(1, 100_001))
    cumulative = CumulativeSBTree(pool(), capacity=32,
                                  domain=(1, TIME_HORIZON))

    # A deterministic activity pattern: sensor s in rack r powers on at
    # a rack-dependent time, draws (s % 50 + 10) watts, and shuts down
    # after a sensor-dependent duration.
    fleet = []
    for rack in range(10, 20):
        for slot in range(0, RACK_SIZE, 7):
            sensor_id = rack * RACK_SIZE + slot
            on = 100 * (rack - 9) + slot
            off = on + 500 + 13 * slot
            watts = float(sensor_id % 50 + 10)
            fleet.append((sensor_id, on, min(off, TIME_HORIZON - 1), watts))

    # Replay in transaction-time order (on/off events interleaved).
    events = []
    for sensor_id, on, off, watts in fleet:
        events.append((on, "on", sensor_id, watts, off))
        events.append((off, "off", sensor_id, watts, off))
    events.sort()
    for t, kind, sensor_id, watts, off in events:
        if kind == "on":
            rta.insert(sensor_id, watts, t)
            cumulative.insert(t, watts)
        else:
            rta.delete(sensor_id, t)
            cumulative.close(0, t, watts)

    # 1. Range-temporal COUNT/AVG: racks 12-17, the window [1200, 2400).
    racks = KeyRange(12 * RACK_SIZE, 18 * RACK_SIZE)
    window = Interval(1200, 2400)
    result = rta.aggregate_all(racks, window)
    print(f"racks 12-17, window {window}:")
    print(f"  sensors ever active: {result.count:.0f}")
    print(f"  mean draw of those:  {result.avg:.1f} W")

    # Narrow the key range to one rack — same logarithmic cost.
    one_rack = KeyRange(15 * RACK_SIZE, 16 * RACK_SIZE)
    print(f"rack 15 alone, same window: "
          f"{rta.count(one_rack, window):.0f} sensors, "
          f"{rta.sum(one_rack, window):.0f} W-sum")

    # 2. Instantaneous fleet-wide power at a few instants.
    for t in (500, 1500, 3000, 6000):
        print(f"total draw at t={t}: {cumulative.instantaneous(t):.0f} W")

    # 3. Cumulative aggregates: window offset picked per query.
    t = 3000
    for w in (0, 500, 2000):
        print(f"draw of sensors active within [t-{w}, t] at t={t}: "
              f"{cumulative.cumulative(t, w):.0f} W")

    # Consistency between the two machineries: a full-key-range RTA SUM
    # over the instant [t, t+1) equals the instantaneous SB-tree answer.
    instant_sum = rta.sum(KeyRange(1, 100_000), Interval(t, t + 1))
    assert instant_sum == cumulative.instantaneous(t)
    print("cross-check passed: RTA instant slice == scalar instantaneous")


if __name__ == "__main__":
    main()
