"""Quickstart: range-temporal aggregates in a dozen lines.

A warehouse receives tuples (key, value) in transaction-time order; tuples
are logically deleted when they stop being valid.  The RTAIndex answers
SUM / COUNT / AVG over *any* key range and time interval in logarithmic
I/Os — that is the paper's contribution.

Run:  python examples/quickstart.py
"""

from repro import Interval, KeyRange, RTAIndex
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


def main() -> None:
    pool = BufferPool(InMemoryDiskManager(), capacity=64)
    index = RTAIndex(pool, key_space=(1, 1_000_001))

    # A tiny warehouse: account balances appearing and disappearing.
    index.insert(key=1004, value=250.0, t=10)   # account 1004 opens at t=10
    index.insert(key=2117, value=900.0, t=12)
    index.insert(key=2118, value=100.0, t=15)
    index.delete(key=1004, t=20)                # account 1004 closes at t=20
    index.insert(key=9500, value=50.0, t=25)

    # "Total balance of accounts 2000-2999 at any point during [12, 18)?"
    r, window = KeyRange(2000, 3000), Interval(12, 18)
    print(f"SUM   {r} x {window} =", index.sum(r, window))      # 1000.0
    print(f"COUNT {r} x {window} =", index.count(r, window))    # 2
    print(f"AVG   {r} x {window} =", index.avg(r, window))      # 500.0

    # The time dimension is first-class: the same key range, queried
    # before account 2118 existed.
    early = Interval(12, 15)
    print(f"COUNT {r} x {early} =", index.count(r, early))      # 1

    # Deleted tuples still count for windows they intersected (the index
    # is partially persistent — history is never lost).
    all_keys = KeyRange(1, 1_000_000)
    print("SUM of everything ever during [10, 30):",
          index.sum(all_keys, Interval(10, 30)))                # 1300.0
    print("SUM of what exists during [20, 30):",
          index.sum(all_keys, Interval(20, 30)))                # 1050.0

    # Every answer above cost six MVSBT point queries per aggregate —
    # O(log n) page reads, independent of how big the rectangle is.
    print("physical page reads so far:", pool.stats.reads)


if __name__ == "__main__":
    main()
