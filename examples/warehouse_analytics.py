"""Warehouse analytics: the paper's motivating scenario end to end.

A historical data warehouse ingests a synthetic transaction-time stream
(the TimeIT-like generator with the paper's parameters, scaled down), then
a "warehouse manager" runs range-temporal aggregates: revenue by product-id
band and quarter, product counts over ad-hoc windows, and so on.  Every
answer is cross-checked against a full-scan baseline, and the I/O gap
between the two plans is reported — the paper's Figure 4b in miniature.

Run:  python examples/warehouse_analytics.py
"""

from repro.baselines.naive_scan import HeapFileScanBaseline
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvsbt.tree import MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset


def build_warehouse(scale: float = 0.002):
    """Generate a dataset and load it into the MVSBT index and a scan
    baseline that shares none of its I/O budget."""
    config = paper_config("uniform-long", scale=scale)
    dataset = generate_dataset(config)

    index = RTAIndex(
        BufferPool(InMemoryDiskManager(), capacity=64),
        MVSBTConfig(capacity=24, strong_factor=0.9),
        key_space=config.key_space,
    )
    scan = HeapFileScanBaseline(
        BufferPool(InMemoryDiskManager(), capacity=64),
        capacity=30, key_space=config.key_space,
    )
    for event in dataset.events:
        if event.op == "insert":
            index.insert(event.key, event.value, event.time)
            scan.insert(event.key, event.value, event.time)
        else:
            index.delete(event.key, event.time)
            scan.delete(event.key, event.time)
    return config, dataset, index, scan


def main() -> None:
    config, dataset, index, scan = build_warehouse()
    print(f"warehouse loaded: {len(dataset)} tuples, "
          f"{dataset.unique_keys} distinct products, "
          f"{len(dataset.events)} updates\n")

    t_hi = config.time_space[1]
    quarters = [
        (f"Q{i + 1}", Interval(1 + i * (t_hi // 4),
                               min((i + 1) * (t_hi // 4), t_hi)))
        for i in range(4)
    ]
    bands = [
        ("low-end  products", KeyRange(1, 10**9 // 3)),
        ("mid-range products", KeyRange(10**9 // 3, 2 * 10**9 // 3)),
        ("high-end products", KeyRange(2 * 10**9 // 3, 10**9 + 1)),
    ]

    print(f"{'quarter':8} {'band':20} {'SUM':>10} {'COUNT':>7} {'AVG':>8}")
    for q_name, q_interval in quarters:
        for b_name, b_range in bands:
            result = index.aggregate_all(b_range, q_interval)
            checked = scan.aggregate_all(b_range, q_interval)
            assert result.sum == checked.sum, "index disagrees with scan!"
            assert result.count == checked.count
            avg = f"{result.avg:8.2f}" if result.avg is not None else "     n/a"
            print(f"{q_name:8} {b_name:20} {result.sum:10.0f} "
                  f"{result.count:7.0f} {avg}")

    # The reason to prefer the index: one big rectangle, both plans.
    whole_range = KeyRange(*config.key_space)
    whole_time = Interval(1, t_hi)

    index.pool.clear()
    before = index.pool.stats.snapshot()
    index.sum(whole_range, whole_time)
    index_ios = index.pool.stats.delta(before).logical_reads

    scan.pool.clear()
    before = scan.pool.stats.snapshot()
    scan.sum(whole_range, whole_time)
    scan_ios = scan.pool.stats.delta(before).logical_reads

    print(f"\nwhole-warehouse SUM: index={index_ios} page reads, "
          f"full scan={scan_ios} page reads "
          f"({scan_ios / index_ios:.0f}x more)")


if __name__ == "__main__":
    main()
